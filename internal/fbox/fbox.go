// Package fbox implements the paper's F-box (§2.2, Fig. 1): the small
// interface box between each processor and the network through which
// every message must pass, applying the public one-way function F to
// the reply-port and signature header fields of outgoing messages and
// admitting inbound messages only for ports on which the host has an
// outstanding GET.
//
// Ports come in pairs (G, P) with P = F(G). A server does GET(G); its
// F-box listens for frames addressed to put-port P = F(G). Clients do
// PUT(P). An intruder who knows only P and does GET(P) ends up
// listening on the useless port F(P), so server impersonation fails.
//
// The F-box also implements the paper's digital signatures: an outgoing
// message carries a signature field S which the F-box transforms to
// F(S) in transit; receivers compare it against the sender's published
// F(S).
//
// The paper puts the F-box in VLSI on the network interface. Here it is
// a software shim that owns the machine's NIC; the substitution
// preserves the security argument because code built on this package
// has no other path to the wire (see DESIGN.md).
package fbox

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/wire"
)

// Port re-exports the 48-bit Amoeba port type; capabilities carry the
// put-port of their server in the same type.
type Port = cap.Port

// Message is what hosts hand to and receive from their F-box.
type Message struct {
	// Dest is the destination put-port (P). The F-box transmits it
	// untransformed; the receiving F-box uses it to find the GET.
	Dest Port
	// Reply is, on send, the sender's secret reply get-port (G'); the
	// F-box transmits F(G'). On receive it is therefore the put-port
	// P' = F(G') to which a reply should be PUT.
	Reply Port
	// Sig is, on send, the sender's secret signature (S); the F-box
	// transmits F(S). On receive it is F(S), to be compared with the
	// sender's published value. Zero means unsigned.
	Sig Port
	// Payload is the message body (opaque to the F-box).
	Payload []byte
}

// Received is an inbound message plus its hardware source machine.
type Received struct {
	Message
	// From is the source machine stamped by the network.
	From amnet.MachineID
	// Buf, when non-nil, is the pooled buffer backing Message.Payload.
	// The consumer owns it: call Release once the payload (and
	// anything aliasing it) is done with. Releasing is optional — an
	// unreleased buffer is simply garbage-collected — but the RPC hot
	// paths release after decoding.
	Buf *wire.Buf
	// At is when the frame came off the NIC. Queue-wait accounting
	// starts here, not at dispatch: time spent in the listener queue is
	// wait the sender's deadline is already paying for.
	At time.Time
}

// Release returns the message's pooled buffer (if any) to the pool.
// The payload is invalid afterwards.
func (r Received) Release() {
	if r.Buf != nil {
		r.Buf.Release()
	}
}

// Errors.
var (
	// ErrPortBusy is returned by Get for a port with an active listener.
	ErrPortBusy = errors.New("fbox: GET already outstanding for this port")
	// ErrClosed is returned after the F-box is closed.
	ErrClosed = errors.New("fbox: closed")
	// ErrBadFrame is reported for undecodable frames (dropped).
	ErrBadFrame = errors.New("fbox: malformed frame")
)

// frame kinds on the wire.
const (
	kindMessage = 0x01
	kindLocate  = 0x02
	kindLocateR = 0x03
)

// wire header: kind(1) dest(6) reply(6) sig(6) = 19 bytes.
const headerSize = 19

// Headroom is the buffer headroom PutBuf consumes: message builders
// that reserve at least wire.DefaultHeadroom (≥ Headroom plus the
// transport's own header) get their frame header prepended in place.
const Headroom = headerSize

// listenerQueue is a service Listener's buffer depth. It matches the
// NIC's inbound queue (amnet default 256) so the receive pump can
// spill an entire backed-up NIC queue into one listener without
// dropping; beyond that, overflow drops the message, as the hardware
// would.
const listenerQueue = 256

// replyQueue is a one-shot reply Listener's buffer depth: one reply is
// expected, plus room for a fault-injected duplicate. Keeping it tiny
// is what makes reply listeners cheap enough to pool — the old
// 256-slot channel per transaction was most of the RPC path's
// allocation bill.
const replyQueue = 2

// FBox is the per-machine function box. It owns the NIC: all traffic
// in and out of the machine flows through it.
type FBox struct {
	nic amnet.NIC
	f   crypto.OneWay

	mu        sync.Mutex
	listeners map[Port]*Listener
	locates   map[Port]bool // ports this F-box answers LOCATE for
	waiters   map[Port][]chan amnet.MachineID
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// New wraps a NIC in an F-box using the given one-way function (nil
// selects SHA-48 with the port-transform tag). The F-box starts its
// receive pump immediately.
func New(nic amnet.NIC, f crypto.OneWay) *FBox {
	if f == nil {
		f = crypto.SHA48{Tag: 1}
	}
	fb := &FBox{
		nic:       nic,
		f:         f,
		listeners: make(map[Port]*Listener),
		locates:   make(map[Port]bool),
		waiters:   make(map[Port][]chan amnet.MachineID),
		done:      make(chan struct{}),
	}
	fb.wg.Add(1)
	go fb.pump()
	return fb
}

// F applies the F-box's public one-way function to a port.
func (fb *FBox) F(p Port) Port {
	return Port(fb.f.F(uint64(p))) & cap.PortMask
}

// Machine returns the machine this F-box is attached to.
func (fb *FBox) Machine() amnet.MachineID { return fb.nic.ID() }

// Listener receives messages for one GET port.
type Listener struct {
	fb     *FBox
	put    Port // the transformed port the listener is keyed by
	ch     chan Received
	pooled bool // reply listener: recycled through replyListeners
	closed bool // guarded by fb.mu
}

// replyListeners recycles one-shot reply listeners (struct and
// channel) across transactions.
var replyListeners = sync.Pool{
	New: func() any { return &Listener{ch: make(chan Received, replyQueue)} },
}

// Recv returns the listener's message channel. For service listeners
// (Get) it is closed when the listener or its F-box is closed; pooled
// reply listeners (GetReply) keep their channel open for recycling and
// only see it closed when the whole F-box shuts down.
func (l *Listener) Recv() <-chan Received { return l.ch }

// Port returns the put-port this listener serves (F of the get-port).
func (l *Listener) Port() Port { return l.put }

// Close cancels the GET. A pooled reply listener is recycled; a
// service listener's channel is closed.
func (l *Listener) Close() {
	fb := l.fb
	fb.mu.Lock()
	if l.closed {
		fb.mu.Unlock()
		return
	}
	l.closed = true
	if fb.listeners[l.put] == l {
		delete(fb.listeners, l.put)
		delete(fb.locates, l.put)
	}
	if l.pooled && !fb.closed {
		fb.mu.Unlock()
		// The map delete above (under the lock the pump delivers
		// under) guarantees no further sends; drain what raced in
		// before it, then recycle.
		for {
			select {
			case m := <-l.ch:
				m.Release()
				continue
			default:
			}
			break
		}
		replyListeners.Put(l)
		return
	}
	// Closing under the F-box lock serializes with the pump's
	// (non-blocking) deliveries, so a frame in flight can never be
	// sent on a closed channel.
	close(l.ch)
	fb.mu.Unlock()
}

// Get implements GET(G): the F-box computes P = F(G) and delivers
// arriving messages addressed to P. The get-port G never leaves the
// machine. advertise controls whether this F-box answers LOCATE
// broadcasts for P (public services advertise; a client's one-shot
// reply ports do not, shrinking the attack surface).
func (fb *FBox) Get(g Port, advertise bool) (*Listener, error) {
	return fb.get(g, advertise, nil)
}

// GetReply is GET(G) for a transaction's one-shot reply port: never
// advertised, buffered for a single reply (plus a duplicate), and
// recycled through a pool when closed — the allocation-free fast path
// under every RPC transaction.
func (fb *FBox) GetReply(g Port) (*Listener, error) {
	l := replyListeners.Get().(*Listener)
	l.pooled = true
	got, err := fb.get(g, false, l)
	if err != nil {
		replyListeners.Put(l)
		return nil, err
	}
	return got, nil
}

func (fb *FBox) get(g Port, advertise bool, reuse *Listener) (*Listener, error) {
	put := fb.F(g)
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return nil, ErrClosed
	}
	if _, busy := fb.listeners[put]; busy {
		return nil, fmt.Errorf("%w: %v", ErrPortBusy, put)
	}
	l := reuse
	if l == nil {
		l = &Listener{ch: make(chan Received, listenerQueue)}
	}
	l.fb, l.put, l.closed = fb, put, false
	fb.listeners[put] = l
	if advertise {
		fb.locates[put] = true
	}
	return l, nil
}

// Put implements PUT(P): send a message to the machine dst, addressed
// to put-port msg.Dest. The F-box transforms the reply and signature
// fields with F on the way out; the destination field passes through
// untransformed. Hosts therefore place their *secret* reply get-port
// and signature in the message; only the one-way images touch the wire.
func (fb *FBox) Put(dst amnet.MachineID, msg Message) error {
	b := wire.Get(wire.DefaultHeadroom, len(msg.Payload))
	b.AppendBytes(msg.Payload)
	return fb.PutBuf(dst, msg.Dest, msg.Reply, msg.Sig, b)
}

// PutBuf is the zero-copy PUT: b carries the message payload (built
// with at least wire.DefaultHeadroom of headroom) and the frame header
// is prepended in place before the same backing array goes to the NIC.
// Ownership of b transfers to the F-box/NIC on every path, success or
// failure. reply and sig are the sender's secrets; their one-way
// images F(reply), F(sig) are what hit the wire.
func (fb *FBox) PutBuf(dst amnet.MachineID, dest, reply, sig Port, b *wire.Buf) error {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		b.Release()
		return ErrClosed
	}
	fb.mu.Unlock()
	if reply != 0 {
		reply = fb.F(reply)
	}
	if sig != 0 {
		sig = fb.F(sig)
	}
	hdr := b.Prepend(headerSize)
	hdr[0] = kindMessage
	putPort(hdr[1:7], dest)
	putPort(hdr[7:13], reply)
	putPort(hdr[13:19], sig)
	return fb.nic.SendBuf(dst, b)
}

// Locate broadcasts a LOCATE for put-port p. Machines whose F-box has
// an advertised GET outstanding for p answer with their machine ID.
// Replies arrive on the returned channel; callers time out on their own
// and must call cancel when done. Package locate layers caching and
// retry on top.
func (fb *FBox) Locate(p Port) (replies <-chan amnet.MachineID, cancel func(), err error) {
	ch := make(chan amnet.MachineID, 8)
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return nil, nil, ErrClosed
	}
	fb.waiters[p] = append(fb.waiters[p], ch)
	fb.mu.Unlock()

	cancel = func() {
		fb.mu.Lock()
		defer fb.mu.Unlock()
		ws := fb.waiters[p]
		for i, w := range ws {
			if w == ch {
				fb.waiters[p] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		if len(fb.waiters[p]) == 0 {
			delete(fb.waiters, p)
		}
	}

	var buf [headerSize]byte
	buf[0] = kindLocate
	putPort(buf[1:7], p)
	if err := fb.nic.Broadcast(buf[:]); err != nil {
		cancel()
		return nil, nil, fmt.Errorf("fbox: locate broadcast: %w", err)
	}
	return ch, cancel, nil
}

// Close shuts the F-box and its NIC down.
func (fb *FBox) Close() error {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return nil
	}
	fb.closed = true
	// Retire every listener inline, under the lock: a snapshot closed
	// after unlocking could race with an owner's concurrent Close
	// recycling a pooled reply listener — the stale handle would then
	// close (and double-pool) a listener already re-registered
	// elsewhere. Under fb.mu the map holds exactly the live listeners,
	// closing the channels here is safe against the pump (it delivers
	// under this lock), and fb.closed stops any re-registration.
	for put, l := range fb.listeners {
		delete(fb.listeners, put)
		delete(fb.locates, put)
		l.closed = true
		close(l.ch)
	}
	fb.mu.Unlock()

	close(fb.done)
	err := fb.nic.Close()
	fb.wg.Wait()
	return err
}

// pump is the receive loop: decode, filter, deliver.
func (fb *FBox) pump() {
	defer fb.wg.Done()
	for {
		select {
		case <-fb.done:
			return
		case f, ok := <-fb.nic.Recv():
			if !ok {
				return
			}
			fb.handleFrame(f)
		}
	}
}

func (fb *FBox) handleFrame(f amnet.Frame) {
	kind, msg, err := decodeFrame(f.Payload)
	if err != nil {
		f.Release()
		return // malformed: drop, as hardware would
	}
	if kind != kindMessage {
		defer f.Release()
	}
	switch kind {
	case kindMessage:
		// Deliver under the lock (the send never blocks): pairs with
		// Listener.Close, which closes the channel under the same lock.
		// Ownership of the frame buffer rides into Received; every
		// non-delivery path releases it.
		delivered := false
		fb.mu.Lock()
		if l := fb.listeners[msg.Dest]; l != nil {
			select {
			case l.ch <- Received{Message: msg, From: f.Src, Buf: f.Buf, At: time.Now()}:
				delivered = true
			default: // listener queue full: drop
			}
		}
		fb.mu.Unlock()
		if !delivered {
			f.Release()
		}
	case kindLocate:
		fb.mu.Lock()
		_, here := fb.locates[msg.Dest]
		fb.mu.Unlock()
		if !here {
			return
		}
		var buf [headerSize]byte
		buf[0] = kindLocateR
		putPort(buf[1:7], msg.Dest)
		// Best effort; the querier retries.
		_ = fb.nic.Send(f.Src, buf[:])
	case kindLocateR:
		fb.mu.Lock()
		ws := append([]chan amnet.MachineID(nil), fb.waiters[msg.Dest]...)
		fb.mu.Unlock()
		for _, w := range ws {
			select {
			case w <- f.Src:
			default:
			}
		}
	}
}

// encodeFrame lays a message out as kind ∥ dest ∥ reply ∥ sig ∥ payload.
func encodeFrame(kind byte, msg Message) []byte {
	buf := make([]byte, headerSize+len(msg.Payload))
	buf[0] = kind
	putPort(buf[1:7], msg.Dest)
	putPort(buf[7:13], msg.Reply)
	putPort(buf[13:19], msg.Sig)
	copy(buf[headerSize:], msg.Payload)
	return buf
}

func decodeFrame(buf []byte) (byte, Message, error) {
	if len(buf) < headerSize {
		return 0, Message{}, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(buf))
	}
	return buf[0], Message{
		Dest:    getPort(buf[1:7]),
		Reply:   getPort(buf[7:13]),
		Sig:     getPort(buf[13:19]),
		Payload: buf[headerSize:],
	}, nil
}

func putPort(dst []byte, p Port) {
	binary.BigEndian.PutUint16(dst[0:], uint16(p>>32))
	binary.BigEndian.PutUint32(dst[2:], uint32(p))
}

func getPort(src []byte) Port {
	return Port(binary.BigEndian.Uint16(src[0:]))<<32 | Port(binary.BigEndian.Uint32(src[2:]))
}
