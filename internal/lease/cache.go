// Package lease implements the client half of lease-based lookup
// caching: a bounded cache of (directory capability, name) → entry
// capability bindings, each valid until a server-granted lease expires
// (the classic lease construction — bounded-staleness reads without
// per-read coordination, the same primitive the replication groups use
// for leadership).
//
// Correctness rests on three legs:
//
//   - Lease expiry bounds staleness for everyone else's writes: a hit
//     is served only while the server-granted duration (stamped from
//     the client's clock at request-send time, so the client's window
//     is strictly inside the server's) has not elapsed.
//   - Directory generations make the client's OWN writes invalidate
//     precisely: every dirsvr mutation bumps the directory's
//     generation and the mutator's reply carries it; the cache keeps a
//     per-directory floor and refuses any cached binding older than
//     the floor, so a client never sees its own write undone.
//   - Revocation fails closed architecturally: a cached capability is
//     only a name for an object — using it still runs the server-side
//     secret check, so a revoked capability is refused no matter how
//     fresh its lease.
//
// Keys are full capabilities (port, object, rights, check), so two
// differently-restricted capabilities for the same directory never
// share entries — a cache hit can never launder rights.
package lease

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/obs"
)

// Key identifies one cached binding: the directory capability exactly
// as presented (rights and check included) plus the component name.
type Key struct {
	Dir  cap.Capability
	Name string
}

type entry struct {
	c      cap.Capability
	gen    uint64
	expiry int64      // UnixNano; valid strictly before this instant
	floor  *floorCell // the owning directory's write floor, shared
}

// dirID names a directory server-side — the floor table is keyed by
// it, not by full capability, because a mutation through ONE
// capability stales bindings cached through ALL of them.
type dirID struct {
	server cap.Port
	object uint32
}

// floorCell holds one directory's write floor. Every entry under the
// directory points at the same cell, so the hot read path checks the
// floor with one atomic load instead of a second map lookup. Writes
// happen under the cache's write lock; reads are lock-free.
type floorCell struct {
	gen atomic.Uint64
}

// Counters is the cache's observability surface. Nil fields are
// replaced with throwaway counters so call sites never nil-check.
type Counters struct {
	Hits        *obs.Counter // served locally, zero RPCs
	Misses      *obs.Counter // no binding cached
	Expired     *obs.Counter // binding present but lease lapsed
	Invalidated *obs.Counter // binding present but below the write floor
}

func (c *Counters) fill() {
	if c.Hits == nil {
		c.Hits = &obs.Counter{}
	}
	if c.Misses == nil {
		c.Misses = &obs.Counter{}
	}
	if c.Expired == nil {
		c.Expired = &obs.Counter{}
	}
	if c.Invalidated == nil {
		c.Invalidated = &obs.Counter{}
	}
}

// Cache is a bounded lookup cache. All methods are safe for concurrent
// use; the hit path takes a read lock and allocates nothing.
type Cache struct {
	// Now is the clock, overridable in tests. Defaults to
	// time.Now().UnixNano.
	Now func() int64

	mu      sync.RWMutex
	entries map[Key]entry
	floors  map[dirID]*floorCell
	max     int
	ctr     Counters
}

// DefaultMax bounds the cache when New is given max <= 0.
const DefaultMax = 4096

// New builds a cache holding at most max bindings.
func New(max int, ctr Counters) *Cache {
	if max <= 0 {
		max = DefaultMax
	}
	ctr.fill()
	return &Cache{
		Now:     func() int64 { return time.Now().UnixNano() },
		entries: make(map[Key]entry),
		floors:  make(map[dirID]*floorCell),
		max:     max,
		ctr:     ctr,
	}
}

// Get returns the cached binding for name in dir if it is still
// usable at instant now (pass one clock read through a whole path
// walk). A binding is usable iff its lease has not expired AND its
// generation is at or above the directory's write floor.
func (ca *Cache) Get(dir cap.Capability, name string, now int64) (cap.Capability, bool) {
	ca.mu.RLock()
	e, ok := ca.entries[Key{Dir: dir, Name: name}]
	ca.mu.RUnlock()
	if !ok {
		ca.ctr.Misses.Inc()
		return cap.Capability{}, false
	}
	if now >= e.expiry {
		ca.ctr.Expired.Inc()
		return cap.Capability{}, false
	}
	if e.gen < e.floor.gen.Load() {
		ca.ctr.Invalidated.Inc()
		return cap.Capability{}, false
	}
	ca.ctr.Hits.Inc()
	return e.c, true
}

// ResolvePath walks as many leading components of path as cached
// bindings allow, under a single lock acquisition — the hot fully-
// cached walk costs one RLock cycle and one map probe per component,
// with no allocations. It returns the capability reached, the
// unresolved remainder of path (""), and the number of components
// served. Component splitting matches the dirsvr walk: empty
// components (leading, trailing, doubled slashes) are skipped.
func (ca *Cache) ResolvePath(dir cap.Capability, path string, now int64) (cap.Capability, string, int) {
	served := 0
	ca.mu.RLock()
	for {
		for len(path) > 0 && path[0] == '/' {
			path = path[1:]
		}
		if path == "" {
			break
		}
		name, after := path, ""
		if i := strings.IndexByte(path, '/'); i >= 0 {
			name, after = path[:i], path[i+1:]
		}
		e, ok := ca.entries[Key{Dir: dir, Name: name}]
		var stopper *obs.Counter
		switch {
		case !ok:
			stopper = ca.ctr.Misses
		case now >= e.expiry:
			stopper = ca.ctr.Expired
		case e.gen < e.floor.gen.Load():
			stopper = ca.ctr.Invalidated
		}
		if stopper != nil {
			ca.mu.RUnlock()
			stopper.Inc()
			if served > 0 {
				ca.ctr.Hits.Add(uint64(served))
			}
			return dir, path, served
		}
		dir, path = e.c, after
		served++
	}
	ca.mu.RUnlock()
	if served > 0 {
		ca.ctr.Hits.Add(uint64(served))
	}
	return dir, "", served
}

// Put caches a binding the server just granted a lease on: name in dir
// resolves to c, observed at directory generation gen, valid until
// expiry (UnixNano — stamp it from a clock read taken BEFORE the
// request was sent, so the cached window is conservative).
func (ca *Cache) Put(dir cap.Capability, name string, c cap.Capability, gen uint64, expiry int64) {
	k := Key{Dir: dir, Name: name}
	ca.mu.Lock()
	if _, present := ca.entries[k]; !present && len(ca.entries) >= ca.max {
		ca.evictOneLocked()
	}
	ca.entries[k] = entry{c: c, gen: gen, expiry: expiry, floor: ca.floorLocked(dir.Server, dir.Object)}
	ca.mu.Unlock()
}

// floorLocked returns the directory's floor cell, creating it at zero.
func (ca *Cache) floorLocked(server cap.Port, object uint32) *floorCell {
	id := dirID{server: server, object: object}
	f := ca.floors[id]
	if f == nil {
		f = &floorCell{}
		ca.floors[id] = f
	}
	return f
}

// evictOneLocked drops one binding, preferring an already-dead one.
// Go's random map iteration makes this a cheap random-replacement
// policy — fine for a cache whose entries expire on their own anyway.
func (ca *Cache) evictOneLocked() {
	now := ca.Now()
	var victim Key
	found := false
	for k, e := range ca.entries {
		victim, found = k, true
		if now >= e.expiry {
			break // a lapsed binding costs nothing to lose
		}
	}
	if found {
		delete(ca.entries, victim)
	}
}

// Observe raises the write floor for a directory to gen: the caller
// just mutated it and the reply carried the post-mutation generation.
// Bindings cached at earlier generations stop being served instantly —
// the client's own writes invalidate precisely, no lease wait.
func (ca *Cache) Observe(server cap.Port, object uint32, gen uint64) {
	ca.mu.Lock()
	f := ca.floorLocked(server, object)
	if gen > f.gen.Load() {
		f.gen.Store(gen)
	}
	ca.mu.Unlock()
}

// Drop forgets every binding under a directory and clears its floor —
// for DestroyDir, after which the object number may be reused by a
// fresh directory whose generations restart at zero.
func (ca *Cache) Drop(server cap.Port, object uint32) {
	id := dirID{server: server, object: object}
	ca.mu.Lock()
	for k := range ca.entries {
		if k.Dir.Server == server && k.Dir.Object == object {
			delete(ca.entries, k)
		}
	}
	delete(ca.floors, id)
	ca.mu.Unlock()
}

// Flush empties the cache (floors included). For tests and for
// clients that learn out-of-band that their world changed.
func (ca *Cache) Flush() {
	ca.mu.Lock()
	ca.entries = make(map[Key]entry)
	ca.floors = make(map[dirID]*floorCell)
	ca.mu.Unlock()
}

// Len reports the number of cached bindings (expired ones included
// until evicted or overwritten).
func (ca *Cache) Len() int {
	ca.mu.RLock()
	defer ca.mu.RUnlock()
	return len(ca.entries)
}

// Poison makes every future Get under the directory miss until new
// leases are granted, without forgetting the floor. Used when a
// destroy reply is lost: fail closed.
func (ca *Cache) Poison(server cap.Port, object uint32) {
	ca.Observe(server, object, math.MaxUint64)
}
