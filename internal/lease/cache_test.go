package lease

import (
	"fmt"
	"testing"

	"amoeba/internal/cap"
	"amoeba/internal/obs"
)

func testDir(obj uint32) cap.Capability {
	return cap.Capability{
		Server: cap.Port(0x0102_0304_0506_0708),
		Object: obj,
		Rights: cap.AllRights,
		Check:  0xDEAD_BEEF_0000_0000 | uint64(obj),
	}
}

func testEntry(obj uint32) cap.Capability {
	c := testDir(obj)
	c.Check ^= 0x5A5A
	return c
}

func TestCacheHitMissExpiry(t *testing.T) {
	var ctr Counters
	c := New(0, ctr)
	clock := int64(1000)
	c.Now = func() int64 { return clock }

	dir, ent := testDir(1), testEntry(2)
	if _, ok := c.Get(dir, "a", clock); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(dir, "a", ent, 3, clock+100)
	if got, ok := c.Get(dir, "a", clock); !ok || got != ent {
		t.Fatalf("want hit with %v, got %v %v", ent, got, ok)
	}
	if _, ok := c.Get(dir, "a", clock+99); !ok {
		t.Fatal("expired one nanosecond early")
	}
	if _, ok := c.Get(dir, "a", clock+100); ok {
		t.Fatal("served a lapsed lease")
	}
}

func TestCacheKeysAreFullCapabilities(t *testing.T) {
	c := New(0, Counters{})
	dir := testDir(1)
	restricted := dir
	restricted.Rights = cap.RightRead
	restricted.Check = 0x1111 // restriction re-keys the check
	c.Put(dir, "a", testEntry(2), 1, 100)
	if _, ok := c.Get(restricted, "a", 0); ok {
		t.Fatal("a differently-restricted capability shared a cache entry")
	}
}

func TestCacheFloorInvalidatesOwnWrites(t *testing.T) {
	c := New(0, Counters{})
	dir := testDir(7)
	c.Put(dir, "a", testEntry(2), 4, 1_000_000)
	c.Observe(dir.Server, dir.Object, 5) // my write bumped the dir to gen 5
	if _, ok := c.Get(dir, "a", 0); ok {
		t.Fatal("served a binding older than my own write")
	}
	c.Put(dir, "a", testEntry(3), 5, 1_000_000)
	if got, ok := c.Get(dir, "a", 0); !ok || got != testEntry(3) {
		t.Fatal("binding at the floor generation must serve")
	}
	// Floors never move backwards.
	c.Observe(dir.Server, dir.Object, 2)
	if _, ok := c.Get(dir, "a", 0); !ok {
		t.Fatal("a stale Observe moved the floor backwards")
	}
}

func TestCacheDropForgetsDirectory(t *testing.T) {
	c := New(0, Counters{})
	dir, other := testDir(1), testDir(2)
	c.Put(dir, "a", testEntry(3), 1, 1_000_000)
	c.Put(dir, "b", testEntry(4), 1, 1_000_000)
	c.Put(other, "a", testEntry(5), 1, 1_000_000)
	c.Observe(dir.Server, dir.Object, 9)
	c.Drop(dir.Server, dir.Object)
	if c.Len() != 1 {
		t.Fatalf("want 1 surviving binding, have %d", c.Len())
	}
	if _, ok := c.Get(other, "a", 0); !ok {
		t.Fatal("Drop took out an unrelated directory")
	}
	// The floor was cleared with the directory: a reused object number
	// restarts at generation zero and must be cacheable again.
	c.Put(dir, "a", testEntry(6), 0, 1_000_000)
	if _, ok := c.Get(dir, "a", 0); !ok {
		t.Fatal("floor survived Drop; reused object number uncacheable")
	}
}

func TestCachePoisonFailsClosed(t *testing.T) {
	c := New(0, Counters{})
	dir := testDir(1)
	c.Put(dir, "a", testEntry(2), 1, 1_000_000)
	c.Poison(dir.Server, dir.Object)
	if _, ok := c.Get(dir, "a", 0); ok {
		t.Fatal("poisoned directory still served")
	}
	c.Put(dir, "a", testEntry(3), 7, 1_000_000)
	if _, ok := c.Get(dir, "a", 0); ok {
		t.Fatal("poison must outlast later leases (floor is max)")
	}
}

func TestCacheBounded(t *testing.T) {
	c := New(8, Counters{})
	dir := testDir(1)
	for i := 0; i < 100; i++ {
		c.Put(dir, fmt.Sprintf("n%d", i), testEntry(uint32(i)), 1, 1_000_000)
	}
	if c.Len() > 8 {
		t.Fatalf("cache grew to %d bindings past its bound of 8", c.Len())
	}
}

func TestCacheCounters(t *testing.T) {
	ctr := Counters{
		Hits:        &obs.Counter{},
		Misses:      &obs.Counter{},
		Expired:     &obs.Counter{},
		Invalidated: &obs.Counter{},
	}
	c := New(0, ctr)
	dir := testDir(1)
	c.Get(dir, "a", 0)                       // miss
	c.Put(dir, "a", testEntry(2), 3, 100)    //
	c.Get(dir, "a", 50)                      // hit
	c.Get(dir, "a", 100)                     // expired
	c.Observe(dir.Server, dir.Object, 4)     //
	c.Get(dir, "a", 50)                      // invalidated
	for name, want := range map[string]struct {
		c    *obs.Counter
		want uint64
	}{
		"hits":        {ctr.Hits, 1},
		"misses":      {ctr.Misses, 1},
		"expired":     {ctr.Expired, 1},
		"invalidated": {ctr.Invalidated, 1},
	} {
		if got := want.c.Value(); got != want.want {
			t.Errorf("%s = %d, want %d", name, got, want.want)
		}
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := New(0, Counters{})
	dir := testDir(1)
	c.Put(dir, "component", testEntry(2), 1, 1<<62)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(dir, "component", 0); !ok {
			b.Fatal("miss")
		}
	}
}
