package repl

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/svc"
	"amoeba/internal/wal"
)

// OpMigrate carries a single-object migration stream: the object's
// secret and serialized state, framed by the same codec as the
// replication stream (big objects fragment across frames, duplicates
// from RPC retries are skipped, reassembly is exactly-once). The
// channel lives on its OWN private port per destination kernel — a
// "take this object" operation on the public service port would be a
// capability-less write path into the service.
const OpMigrate uint16 = 0x0702

// migPayload is the reassembled migration record:
// obj(4) ∥ secret(8) ∥ service state.
const migPayloadHdr = 12

// MigrateReceiver is the destination half of a live migration: an RPC
// server on a fresh private port that installs shipped objects into a
// running kernel via InstallMigrated — durable (and shipped to the
// destination shard's standbys) before the acknowledgement that lets
// the source seal its migrate-out.
type MigrateReceiver struct {
	srv *rpc.Server
	k   *svc.Kernel

	mu sync.Mutex
	st stream
}

// NewMigrateReceiver builds the receiver feeding kernel k. Call Start
// to begin listening; Port is what the source ships to.
func NewMigrateReceiver(fb *fbox.FBox, src crypto.Source, k *svc.Kernel) *MigrateReceiver {
	m := &MigrateReceiver{k: k}
	m.srv = rpc.NewServer(fb, src)
	// Inline: migrations are serialized by m.mu and rare; the worker
	// pool handoff would buy nothing.
	m.srv.HandleInline(OpMigrate, m.handle)
	return m
}

// Port returns the receiver's put-port (the migration destination).
func (m *MigrateReceiver) Port() cap.Port { return m.srv.PutPort() }

// Start begins receiving (advertises the private port for LOCATE).
func (m *MigrateReceiver) Start() error { return m.srv.Start() }

// Close stops the receiver.
func (m *MigrateReceiver) Close() error { return m.srv.Close() }

func (m *MigrateReceiver) handle(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	items, rebase, _, err := Decode(req.Data)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	gap := false
	for _, it := range items {
		v, rec, err := m.st.offer(it, rebase)
		if err != nil {
			m.st.reset()
			return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
		}
		switch v {
		case vSkip, vWait:
		case vGap:
			gap = true
		case vApply:
			if len(rec.Data) < migPayloadHdr {
				m.st.reset()
				return rpc.ErrReply(rpc.StatusBadRequest, "repl: short migration payload")
			}
			obj := binary.BigEndian.Uint32(rec.Data[0:])
			secret := binary.BigEndian.Uint64(rec.Data[4:])
			if err := m.k.InstallMigrated(obj, secret, rec.Data[migPayloadHdr:]); err != nil {
				m.st.reset()
				return rpc.ErrReplyFromErr(err)
			}
			m.st.applied(rec, rebase)
		}
		if gap {
			break
		}
	}
	if gap {
		return conflict(m.st.high())
	}
	return rpc.OkReply(ackData(m.st.high()))
}

// ShipObject sends one extracted object to a MigrateReceiver and
// returns once the destination has acknowledged durable custody. seq
// must increase across migrations to one destination (the cluster
// passes its map generation counter): the sequencing core then treats
// a redelivered older migration as the duplicate it is.
func ShipObject(ctx context.Context, c *rpc.Client, dest cap.Port, seq uint64, obj uint32, secret uint64, state []byte, opts ...rpc.CallOption) error {
	payload := make([]byte, migPayloadHdr+len(state))
	binary.BigEndian.PutUint32(payload[0:], obj&cap.ObjectMask)
	binary.BigEndian.PutUint64(payload[4:], secret)
	copy(payload[migPayloadHdr:], state)
	// Rebase framing: each migration is its own self-contained base —
	// the receiver applies it without history, exactly once.
	frames := Encode([]wal.Record{{Seq: seq, Checkpoint: true, Data: payload}}, true, seq)
	for _, f := range frames {
		rep, err := c.Trans(ctx, dest, rpc.Request{Op: OpMigrate, Data: f.Payload}, opts...)
		if err != nil {
			return fmt.Errorf("repl: shipping object %d: %w", obj, err)
		}
		if rep.Status != rpc.StatusOK {
			return fmt.Errorf("repl: shipping object %d: %s (%s)", obj, rep.Status, rep.Data)
		}
	}
	return nil
}
