package repl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/rpc"
)

// Lease errors, surfaced through the kernel's replica fence. The
// transient one (a lapsed lease, which the next heartbeat round may
// renew) maps to rpc.StatusOverload — the client backs off and retries
// in place. The permanent ones (sealed, deposed, self-demoted: this
// incarnation will never serve again) wrap rpc.ErrStaleAuthority so
// the fence surfaces them as rpc.StatusStale — the client evicts its
// cached binding and re-LOCATEs the successor in one round trip
// instead of grinding through a backoff ladder against a corpse.
var (
	// ErrLeaseLapsed means a majority of the group has stopped granting
	// renewals: the primary no longer knows it is the primary, so it
	// must not acknowledge durable operations.
	ErrLeaseLapsed = errors.New("repl: serving lease lapsed (no majority of grants)")
	// ErrSealed means a committed batch failed to reach a majority of
	// the group: acknowledging it — or anything after it — could be
	// contradicted by an election among the majority that never saw it.
	ErrSealed = fmt.Errorf("repl: group sealed (batch missed majority): %w", rpc.ErrStaleAuthority)
	// ErrDeposed means a peer has seen a higher term: an election has
	// already replaced this primary.
	ErrDeposed = fmt.Errorf("repl: deposed (newer term observed): %w", rpc.ErrStaleAuthority)
	// ErrSelfDemoted means the primary's own WAL wedged: it can no
	// longer make anything durable, so it has renounced the leadership
	// it could only betray. Shipping and heartbeats stop deliberately —
	// to the group's failure detectors a dead disk is a dead machine.
	ErrSelfDemoted = fmt.Errorf("repl: self-demoted (local WAL wedged): %w", rpc.ErrStaleAuthority)
)

// Detector is a standby's failure detector: it watches the receiver's
// last-contact clock and fires onExpire exactly once when the primary's
// heartbeats have been silent for longer than the expiry gap. The gap
// must exceed the primary's lease term by the cluster's assumed clock
// skew: the primary measures its lease from frame SEND time and the
// standby measures silence from frame RECEIVE time, so with clocks
// within the skew bound the old primary stops acknowledging strictly
// before any standby starts an election — the split-brain guard is
// time plus quorum, not an operator's memory of who was promoted.
type Detector struct {
	gap      time.Duration
	contact  func() time.Time
	onExpire func()
	now      func() time.Time

	fired atomic.Bool
	once  sync.Once
	stop  chan struct{}
	done  chan struct{}
}

// NewDetector builds (but does not start) a detector. contact returns
// the receiver's last term-valid frame arrival; onExpire runs at most
// once, on the detector's own goroutine. now is the clock (nil selects
// time.Now — tests inject a skewed one).
func NewDetector(gap time.Duration, contact func() time.Time, onExpire func(), now func() time.Time) *Detector {
	if now == nil {
		now = time.Now
	}
	return &Detector{
		gap:      gap,
		contact:  contact,
		onExpire: onExpire,
		now:      now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start begins watching. Polling at a quarter of the gap bounds the
// detection latency at gap + gap/4 without a timer reset per frame.
func (d *Detector) Start() {
	go func() {
		defer close(d.done)
		tick := time.NewTicker(d.gap / 4)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if d.now().Sub(d.contact()) > d.gap {
					d.fired.Store(true)
					d.onExpire()
					return
				}
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop cancels the watch (idempotent; safe against a concurrent fire —
// onExpire may still run once if it was already in flight).
func (d *Detector) Stop() {
	d.once.Do(func() { close(d.stop) })
	<-d.done
}

// Fired reports whether the detector has fired.
func (d *Detector) Fired() bool { return d.fired.Load() }
