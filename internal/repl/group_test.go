package repl

import (
	"context"
	"sync"
	"testing"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// groupRig is a primary counter fanned out to n standby receivers via
// one group shipper.
type groupRig struct {
	primary   *counter
	primaryFB *fbox.FBox
	backups   []*counter
	backupFBs []*fbox.FBox
	recvs     []*Receiver
	ship      *Shipper
}

func newGroupRig(t *testing.T, r *rig, n int, o Options) *groupRig {
	t.Helper()
	g := &groupRig{}
	disk, err := vdisk.New(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.primaryFB = r.attach()
	g.primary = newCounter(t, g.primaryFB, plog, 0)
	if err := g.primary.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.primary.Close() })

	dests := make([]cap.Port, 0, n)
	for i := 0; i < n; i++ {
		bdisk, err := vdisk.New(512, 256)
		if err != nil {
			t.Fatal(err)
		}
		blog, err := wal.Open(bdisk, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fb := r.attach()
		b := newCounter(t, fb, blog, g.primary.GetPort())
		t.Cleanup(func() { b.Close() })
		recv := NewReceiver(fb, crypto.NewSeededSource(uint64(17+i)), b.Kernel, b.apply)
		if err := recv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { recv.Close() })
		g.backups = append(g.backups, b)
		g.backupFBs = append(g.backupFBs, fb)
		g.recvs = append(g.recvs, recv)
		dests = append(dests, recv.Port())
	}
	g.ship, err = AttachGroup(g.primary.Kernel, r.newClientOn(g.primaryFB), dests, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.ship.Stop)
	return g
}

func (g *groupRig) inc(t *testing.T, r *rig, name string, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := r.client.Trans(ctx, g.primary.PutPort(), rpc.Request{Op: opInc, Data: []byte(name)},
			rpc.WithTimeout(5*time.Second), rpc.WithRetries(0)); err != nil {
			t.Fatalf("inc %s #%d: %v", name, i, err)
		}
	}
}

// TestGroupFanOut: every committed record reaches every standby before
// the client's reply — synchronous replication to the whole live group.
func TestGroupFanOut(t *testing.T) {
	r := newRig(t)
	g := newGroupRig(t, r, 3, Options{})
	g.inc(t, r, "a", 5)
	for i, b := range g.backups {
		if got := b.get("a"); got != 5 {
			t.Fatalf("standby %d holds %d records, want 5 (fan-out must be synchronous)", i, got)
		}
	}
	if lag := g.ship.Lag(); lag != 0 {
		t.Fatalf("healthy fan-out lags %d records", lag)
	}
}

// TestGroupHeartbeatsKeepLeaseWhileIdle: with no mutations at all, bare
// heartbeat frames renew every peer's grant, so the serving lease stays
// valid and each receiver's contact clock keeps advancing.
func TestGroupHeartbeatsKeepLeaseWhileIdle(t *testing.T) {
	const lt = 30 * time.Millisecond
	r := newRig(t)
	g := newGroupRig(t, r, 2, Options{LeaseTerm: lt, GroupSize: 3, Term: 1})
	g.inc(t, r, "a", 1)
	before := make([]time.Time, len(g.recvs))
	for i, rv := range g.recvs {
		before[i] = rv.LastContact()
	}
	time.Sleep(5 * lt) // idle: only heartbeats cross the channel
	if !g.ship.LeaseValid() {
		t.Fatal("lease lapsed on an idle but healthy group")
	}
	if err := g.ship.Fence(); err != nil {
		t.Fatalf("fence closed on a healthy group: %v", err)
	}
	for i, rv := range g.recvs {
		if !rv.LastContact().After(before[i]) {
			t.Fatalf("standby %d's contact clock never advanced while idle", i)
		}
	}
	if s := g.ship.Stats(); s.Heartbeats == 0 {
		t.Fatalf("no heartbeats recorded: %+v", s)
	}
}

// TestGroupLeaseLapsesWithoutQuorum: when every standby goes silent the
// grants age out and Fence closes within a lease term — the primary
// stops acknowledging durable ops on its own clock, no election needed.
func TestGroupLeaseLapsesWithoutQuorum(t *testing.T) {
	const lt = 30 * time.Millisecond
	r := newRig(t)
	g := newGroupRig(t, r, 2, Options{
		LeaseTerm: lt, GroupSize: 3, Term: 1,
		Timeout: 10 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond,
	})
	g.inc(t, r, "a", 1)
	for _, rv := range g.recvs {
		rv.Close() // both standby machines go dark
	}
	deadline := time.Now().Add(3 * time.Second)
	for g.ship.LeaseValid() {
		if time.Now().After(deadline) {
			t.Fatal("lease never lapsed after the whole group went silent")
		}
		time.Sleep(lt / 4)
	}
	if err := g.ship.Fence(); err == nil {
		t.Fatal("fence open with a lapsed lease")
	}
}

// TestGroupSealsWhenBatchMissesMajority: a commit that cannot reach a
// majority of the configured group seals the shipper — Fence refuses
// every later acknowledgement, stickily, because a successor could be
// elected among peers that never saw the batch.
func TestGroupSealsWhenBatchMissesMajority(t *testing.T) {
	r := newRig(t)
	g := newGroupRig(t, r, 2, Options{
		LeaseTerm: 50 * time.Millisecond, GroupSize: 3, Term: 1,
		Timeout: 10 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond,
	})
	g.inc(t, r, "a", 1)
	for _, rv := range g.recvs {
		rv.Close()
	}
	// This op commits locally but ships nowhere: 1 < majority(3) = 2.
	g.inc(t, r, "orphan", 1)
	if s := g.ship.Stats(); !s.Sealed {
		t.Fatalf("batch missed majority but the shipper is not sealed: %+v", s)
	}
	if err := g.ship.Fence(); err != ErrSealed {
		t.Fatalf("fence after missed majority: %v, want ErrSealed", err)
	}
}

// TestGroupSurvivesMinorityLoss: losing one standby of three neither
// seals the group nor lapses the lease — the survivor plus the primary
// is still a majority, and the lost peer is shipped around.
func TestGroupSurvivesMinorityLoss(t *testing.T) {
	const lt = 40 * time.Millisecond
	r := newRig(t)
	g := newGroupRig(t, r, 2, Options{
		LeaseTerm: lt, GroupSize: 3, Term: 1,
		Timeout: 10 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond,
		Reprobe: time.Hour, // keep the dead peer dead for this test
	})
	g.inc(t, r, "a", 2)
	g.recvs[0].Close()
	g.inc(t, r, "b", 3) // first op burns the attempt budget, peer goes lost
	if g.ship.LostPeers() != 1 {
		t.Fatalf("lost peers %d, want 1", g.ship.LostPeers())
	}
	if err := g.ship.Fence(); err != nil {
		t.Fatalf("fence closed after a minority loss: %v", err)
	}
	if got := g.backups[1].get("b"); got != 3 {
		t.Fatalf("surviving standby holds %d 'b' records, want 3", got)
	}
	time.Sleep(2 * lt)
	if !g.ship.LeaseValid() {
		t.Fatal("lease lapsed with a full majority still granting")
	}
}

// TestGroupReprobeRebasesReturningPeer: a peer lost to a partition is
// slow-reprobed, and on contact is re-based through the snapshot path —
// it rejoins the live group holding the full state, no operator verb.
func TestGroupReprobeRebasesReturningPeer(t *testing.T) {
	r := newRig(t)
	g := newGroupRig(t, r, 2, Options{
		LeaseTerm: 40 * time.Millisecond, GroupSize: 3, Term: 1,
		Timeout: 10 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond,
		Reprobe: 10 * time.Millisecond,
	})
	g.inc(t, r, "a", 2)
	// Partition standby 0 from the primary (both directions).
	pm, bm := g.primaryFB.Machine(), g.backupFBs[0].Machine()
	r.net.Partition(pm, bm)
	g.inc(t, r, "b", 3)
	if g.ship.LostPeers() != 1 {
		t.Fatalf("lost peers %d, want 1", g.ship.LostPeers())
	}
	r.net.Heal(pm, bm)
	deadline := time.Now().Add(5 * time.Second)
	for g.ship.LostPeers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("healed peer never re-based")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The re-based peer holds everything, including the ops it missed.
	g.inc(t, r, "c", 1)
	if got := g.backups[0].get("a") + g.backups[0].get("b") + g.backups[0].get("c"); got != 6 {
		t.Fatalf("re-based standby holds %d records, want 6", got)
	}
	if s := g.ship.Stats(); s.Rebases == 0 {
		t.Fatalf("no rebase recorded: %+v", s)
	}
}

// TestGroupStaleTermDeposesOldPrimary: a receiver that has adopted a
// newer term bounces lower-term frames with StatusStale and does not
// refresh its contact clock for them — and the old shipper goes
// permanently deposed the moment it sees the bounce.
func TestGroupStaleTermDeposesOldPrimary(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	g := newGroupRig(t, r, 1, Options{LeaseTerm: time.Hour, GroupSize: 3, Term: 3})
	g.inc(t, r, "a", 1)

	// A successor at term 4 announces itself (a bare heartbeat is
	// enough to advance the receiver's epoch).
	raw := r.newClientOn(r.attach())
	rep, err := raw.Trans(ctx, g.recvs[0].Port(), rpc.Request{Op: OpShip, Data: EncodeHeartbeat(4)})
	if err != nil || rep.Status != rpc.StatusOK {
		t.Fatalf("term-4 heartbeat: %v %+v", err, rep)
	}
	if g.recvs[0].Term() != 4 {
		t.Fatalf("receiver term %d, want 4", g.recvs[0].Term())
	}
	contact := g.recvs[0].LastContact()

	// The term-3 primary's next frame must bounce and not read as life.
	rep, err = raw.Trans(ctx, g.recvs[0].Port(), rpc.Request{Op: OpShip, Data: EncodeHeartbeat(3)})
	if err != nil || rep.Status != rpc.StatusStale {
		t.Fatalf("stale heartbeat: %v %+v", err, rep)
	}
	if g.recvs[0].LastContact().After(contact) {
		t.Fatal("a stale-term frame refreshed the contact clock (would suppress the failure detector)")
	}

	// And through the shipper itself: the next commit's ship sees the
	// bounce and deposes this primary for good.
	g.inc(t, r, "b", 1)
	if err := g.ship.Fence(); err != ErrDeposed {
		t.Fatalf("fence after stale bounce: %v, want ErrDeposed", err)
	}
	if s := g.ship.Stats(); !s.Deposed {
		t.Fatalf("deposition not recorded: %+v", s)
	}
}

// fakeClock is a hand-advanced clock for the skew tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestClockSkewLeaseLapsesBeforeDetectorFires is the split-brain timing
// guarantee under clock skew: the primary measures its lease on its own
// clock from frame SEND time, the standby measures silence on ITS clock
// from frame RECEIVE time, and the detector gap (1.5 terms) exceeds the
// lease term by the tolerated skew (term/2). Even when the standby's
// clock STEPS forward by almost half a term right after the last
// contact — the worst tolerated case, firing the detector as early as
// it can fire — the old primary's lease has already lapsed by the time
// onExpire runs. The assertion is made at the fire instant itself.
func TestClockSkewLeaseLapsesBeforeDetectorFires(t *testing.T) {
	const lt = 100 * time.Millisecond
	pc, sc := newFakeClock(), newFakeClock()

	r := newRig(t)
	// Bespoke rig: the receiver needs its clock injected before Start.
	disk, err := vdisk.New(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pfb := r.attach()
	primary := newCounter(t, pfb, plog, 0)
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })

	bdisk, err := vdisk.New(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	blog, err := wal.Open(bdisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bfb := r.attach()
	backup := newCounter(t, bfb, blog, primary.GetPort())
	t.Cleanup(func() { backup.Close() })
	recv := NewReceiver(bfb, crypto.NewSeededSource(23), backup.Kernel, backup.apply)
	recv.SetClock(sc.Now)
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })

	ship, err := AttachGroup(primary.Kernel, r.newClientOn(pfb), []cap.Port{recv.Port()}, Options{
		LeaseTerm: lt, GroupSize: 3, Term: 1,
		Timeout: 10 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond,
		Now: pc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ship.Stop)

	// One acknowledged op: grant stamped at pc-now, contact at sc-now.
	if _, err := r.client.Trans(context.Background(), primary.PutPort(),
		rpc.Request{Op: opInc, Data: []byte("a")}, rpc.WithTimeout(5*time.Second), rpc.WithRetries(0)); err != nil {
		t.Fatal(err)
	}
	// The primary falls silent (its machine dies); no more renewals.
	recv.Close()

	// The detector the standby would run, on the standby's clock, with
	// the fence checked AT THE FIRE INSTANT — the moment a successor
	// would start an election.
	fenceAtFire := make(chan error, 1)
	det := NewDetector(lt*3/2, recv.LastContact, func() {
		fenceAtFire <- ship.Fence()
	}, sc.Now)
	det.Start()
	t.Cleanup(det.Stop)

	// Worst tolerated skew: the standby's clock steps forward by just
	// under half a term immediately after the last contact, pulling the
	// detector's firing as early as the design tolerates.
	sc.Advance(lt/2 - lt/10)

	// Both clocks now tick in lockstep. The detector (polling in real
	// time) fires once sc-silence exceeds 1.5 terms — at which point
	// pc-silence is > 1.0 term and the lease has already lapsed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-fenceAtFire:
			if err == nil {
				t.Fatal("detector fired while the old primary's lease was still valid: split-brain window")
			}
			if ship.LeaseValid() {
				t.Fatal("lease still valid after the fire instant")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("detector never fired")
		}
		pc.Advance(lt / 10)
		sc.Advance(lt / 10)
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGroupAddPeerJoinsLive: AddPeer re-bases a brand-new standby into
// a running group with no gap — the re-integration path Restart uses.
func TestGroupAddPeerJoinsLive(t *testing.T) {
	r := newRig(t)
	g := newGroupRig(t, r, 1, Options{LeaseTerm: 40 * time.Millisecond, GroupSize: 3, Term: 1})
	g.inc(t, r, "a", 3)

	disk, err := vdisk.New(512, 256)
	if err != nil {
		t.Fatal(err)
	}
	blog, err := wal.Open(disk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fb := r.attach()
	b := newCounter(t, fb, blog, g.primary.GetPort())
	t.Cleanup(func() { b.Close() })
	recv := NewReceiver(fb, crypto.NewSeededSource(29), b.Kernel, b.apply)
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })

	if err := g.ship.AddPeer(recv.Port()); err != nil {
		t.Fatal(err)
	}
	if got := b.get("a"); got != 3 {
		t.Fatalf("joined peer's base snapshot holds %d records, want 3", got)
	}
	g.inc(t, r, "b", 2)
	if got := b.get("b"); got != 2 {
		t.Fatalf("joined peer missed %d streamed records", 2-b.get("b"))
	}
	if lag := g.ship.Lag(); lag != 0 {
		t.Fatalf("group lags %d after a live join", lag)
	}
}
