package repl

import (
	"testing"

	"amoeba/internal/wal"
)

// offerAll pushes records through a stream the way the receiver does,
// returning the sequence numbers that were applied.
func offerAll(t *testing.T, st *stream, recs []wal.Record, rebase bool) (applied []uint64, gaps int) {
	t.Helper()
	for _, f := range Encode(recs, rebase, 0) {
		items, rb, _, err := Decode(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			v, rec, err := st.offer(it, rb)
			if err != nil {
				t.Fatal(err)
			}
			switch v {
			case vApply:
				applied = append(applied, rec.Seq)
				st.applied(rec, rb)
			case vGap:
				gaps++
			}
		}
	}
	return applied, gaps
}

func rec(seq uint64) wal.Record { return wal.Record{Seq: seq, Data: []byte{byte(seq)}} }

func TestStreamOrderAndRebase(t *testing.T) {
	st := &stream{}
	// Nothing applies before a base.
	if _, gaps := offerAll(t, st, []wal.Record{rec(1)}, false); gaps != 1 {
		t.Fatal("un-based stream accepted a record")
	}
	base := []wal.Record{{Seq: 0, Checkpoint: true, Data: []byte("base")}}
	if applied, _ := offerAll(t, st, base, true); len(applied) != 1 {
		t.Fatal("base not applied")
	}
	applied, gaps := offerAll(t, st, []wal.Record{rec(1), rec(2), rec(3)}, false)
	if len(applied) != 3 || gaps != 0 {
		t.Fatalf("in-order stream: applied %v gaps %d", applied, gaps)
	}
	if st.high() != 3 {
		t.Fatalf("high %d, want 3", st.high())
	}

	// Duplicates (an RPC retry re-delivering the whole batch): skipped.
	applied, gaps = offerAll(t, st, []wal.Record{rec(2), rec(3)}, false)
	if len(applied) != 0 || gaps != 0 {
		t.Fatalf("duplicates: applied %v gaps %d", applied, gaps)
	}

	// A gap: rejected, high unmoved.
	if _, gaps = offerAll(t, st, []wal.Record{rec(7)}, false); gaps != 1 {
		t.Fatal("gap not rejected")
	}
	if st.high() != 3 {
		t.Fatalf("gap moved high to %d", st.high())
	}

	// A delayed duplicate of the base must not rewind the stream.
	if applied, _ = offerAll(t, st, base, true); len(applied) != 0 {
		t.Fatal("stale rebase rewound the stream")
	}
	if !st.based || st.expected != 4 {
		t.Fatalf("stream state disturbed: based=%v expected=%d", st.based, st.expected)
	}

	// A NEWER rebase (a later base snapshot) resets forward.
	if applied, _ = offerAll(t, st, []wal.Record{{Seq: 9, Checkpoint: true, Data: []byte("b2")}}, true); len(applied) != 1 {
		t.Fatal("forward rebase rejected")
	}
	if st.high() != 9 {
		t.Fatalf("high %d after rebase, want 9", st.high())
	}
}

func TestStreamFragmentRetry(t *testing.T) {
	big := make([]byte, MaxShipBytes+100)
	frames := Encode([]wal.Record{{Seq: 5, Data: big}}, false, 0)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want 2", len(frames))
	}
	items0, _, _, _ := Decode(frames[0].Payload)
	items1, _, _, _ := Decode(frames[1].Payload)

	st := &stream{based: true, expected: 5}
	if v, _, _ := st.offer(items0[0], false); v != vWait {
		t.Fatalf("first fragment verdict %v", v)
	}
	// Duplicate of the first fragment (retry): harmless skip.
	if v, _, _ := st.offer(items0[0], false); v != vSkip {
		t.Fatal("duplicate fragment not skipped")
	}
	// Continuation completes the record.
	v, rec, _ := st.offer(items1[0], false)
	if v != vApply || len(rec.Data) != len(big) {
		t.Fatalf("continuation verdict %v", v)
	}
	st.applied(rec, false)

	// A continuation fragment with no head (the head was lost): gap.
	st2 := &stream{based: true, expected: 5}
	if v, _, _ := st2.offer(items1[0], false); v != vGap {
		t.Fatal("headless fragment accepted")
	}
	// After a reset (failed apply), the retry rebuilds from scratch.
	st3 := &stream{based: true, expected: 5}
	st3.offer(items0[0], false)
	st3.reset()
	if v, _, _ := st3.offer(items1[0], false); v != vGap {
		t.Fatal("post-reset continuation accepted without its head")
	}
	if v, _, _ := st3.offer(items0[0], false); v != vWait {
		t.Fatal("post-reset head rejected")
	}
}
