// Package repl is the hot-standby replication layer: a primary
// service's committed write-ahead-log stream, shipped over RPC to a
// backup machine that keeps a warm, durable copy of the service ready
// for promotion.
//
// In the paper's model a service lives at a *port*, not a machine —
// LOCATE re-broadcast (§2.2) exists precisely so clients find whoever
// currently serves the port. This package exploits that: the standby
// holds the same secret get-port as the primary but keeps it dark (its
// kernel is never Started), receiving the stream on a private port of
// its own. Promotion is then nothing but starting the standby's kernel:
// it advertises the shared put-port, clients' stale routes time out,
// invalidate, re-broadcast, and land on the new incarnation — with
// every acknowledged operation present, because the primary's group
// commit does not complete (and so no client reply is sent) until the
// standby has appended the batch to its OWN log and acknowledged it.
//
// Shipping piggybacks on the primary's group commit — one ship RPC per
// commit batch, issued from the committer goroutine after the local
// sync — so replication adds a network round trip but NO extra fsyncs.
//
// Wire format of one ship frame (the payload of an OpShip request):
//
//	flags(1) ∥ term(8) ∥ count(2) ∥ count × item
//	item: seq(8) ∥ kind(1) ∥ total(4) ∥ off(4) ∥ fragLen(4) ∥ frag
//
// Records larger than a frame are fragmented (off/total); the receiver
// reassembles in order. flags bit 0 marks a rebase frame: its (single,
// possibly fragmented) checkpoint record replaces the standby's whole
// state and resets the expected sequence — how a standby attaches to a
// primary mid-life. A frame with count = 0 is a heartbeat: it renews
// the sender's lease grant and refreshes the receiver's failure
// detector without carrying records. term is the sender's replication
// epoch; a receiver that has seen a higher term rejects the frame with
// rpc.StatusStale (the sender is a deposed primary) and otherwise
// adopts the term. Replies carry high(8), the receiver's durable
// high-water sequence; a sequence gap is rejected with
// rpc.StatusConflict (same high(8) payload) and the shipper heals it
// by re-shipping from the receiver's high water via wal.ReadFrom.
package repl

import (
	"encoding/binary"
	"fmt"

	"amoeba/internal/amnet"
	"amoeba/internal/wal"
)

// Operation codes (the replication channel's private protocol).
const (
	// OpShip carries one ship frame; reply data is high(8).
	OpShip uint16 = 0x0700 + iota
	// OpSeq queries the receiver: reply data is based(1) ∥ high(8).
	OpSeq
)

const (
	kindData       = 0x01
	kindCheckpoint = 0x02

	flagRebase = 0x01

	frameHdr = 11 // flags(1) term(8) count(2)
	itemHdr  = 21 // seq(8) kind(1) total(4) off(4) fragLen(4)
)

// MaxShipBytes bounds one ship frame's payload, leaving headroom under
// the network MTU for the RPC and F-box headers.
const MaxShipBytes = amnet.MTU - 4096

// MaxRecordTotal bounds a single record's reassembled size — a decode
// guard so a forged frame cannot make the receiver reserve gigabytes.
const MaxRecordTotal = 1 << 26

// Item is one decoded ship-frame entry: a whole record when Off == 0
// and len(Frag) == Total, otherwise a fragment of one.
type Item struct {
	Seq        uint64
	Checkpoint bool
	Total      uint32
	Off        uint32
	Frag       []byte
}

// Frame is one encoded ship frame plus the sequence of its first item
// (the shipper's gap-healing anchor).
type Frame struct {
	Payload  []byte
	FirstSeq uint64
}

// Encode packs records into one or more ship frames stamped with the
// sender's term, splitting records that exceed MaxShipBytes into
// fragments.
func Encode(recs []wal.Record, rebase bool, term uint64) []Frame {
	flags := byte(0)
	if rebase {
		flags = flagRebase
	}
	// Size frames for the batch at hand (capped at MaxShipBytes): the
	// common commit batch is a handful of small records, and zeroing a
	// full MTU-sized buffer per batch would dominate the ship cost.
	need := frameHdr
	for _, r := range recs {
		need += itemHdr + len(r.Data)
	}
	if need > MaxShipBytes {
		need = MaxShipBytes
	}
	var frames []Frame
	cur := make([]byte, frameHdr, need)
	cur[0] = flags
	binary.BigEndian.PutUint64(cur[1:9], term)
	count := 0
	var first uint64
	flush := func() {
		if count == 0 {
			return
		}
		binary.BigEndian.PutUint16(cur[9:11], uint16(count))
		frames = append(frames, Frame{Payload: cur, FirstSeq: first})
		cur = make([]byte, frameHdr, need)
		cur[0] = flags
		binary.BigEndian.PutUint64(cur[1:9], term)
		count = 0
	}
	for _, r := range recs {
		kind := byte(kindData)
		if r.Checkpoint {
			kind = kindCheckpoint
		}
		off := 0
		for {
			space := MaxShipBytes - len(cur) - itemHdr
			if space <= 0 || (count >= 0xFFFF) {
				flush()
				continue
			}
			n := len(r.Data) - off
			if n > space {
				n = space
			}
			if count == 0 {
				first = r.Seq
			}
			var hdr [itemHdr]byte
			binary.BigEndian.PutUint64(hdr[0:], r.Seq)
			hdr[8] = kind
			binary.BigEndian.PutUint32(hdr[9:], uint32(len(r.Data)))
			binary.BigEndian.PutUint32(hdr[13:], uint32(off))
			binary.BigEndian.PutUint32(hdr[17:], uint32(n))
			cur = append(cur, hdr[:]...)
			cur = append(cur, r.Data[off:off+n]...)
			count++
			off += n
			if off >= len(r.Data) {
				break
			}
		}
	}
	flush()
	return frames
}

// EncodeHeartbeat builds the empty ship frame that renews a lease: no
// records, just the sender's term.
func EncodeHeartbeat(term uint64) []byte {
	b := make([]byte, frameHdr)
	binary.BigEndian.PutUint64(b[1:9], term)
	return b
}

// Decode parses one ship frame. It never panics on arbitrary input
// (fuzzed); a malformed frame returns an error.
func Decode(frame []byte) (items []Item, rebase bool, term uint64, err error) {
	if len(frame) < frameHdr {
		return nil, false, 0, fmt.Errorf("repl: short frame (%d bytes)", len(frame))
	}
	flags := frame[0]
	if flags&^flagRebase != 0 {
		return nil, false, 0, fmt.Errorf("repl: unknown flags %#02x", flags)
	}
	term = binary.BigEndian.Uint64(frame[1:9])
	count := int(binary.BigEndian.Uint16(frame[9:11]))
	at := frameHdr
	cap := count
	if cap > 64 {
		cap = 64 // trust the data length, not the claimed count
	}
	items = make([]Item, 0, cap)
	for i := 0; i < count; i++ {
		if len(frame)-at < itemHdr {
			return nil, false, 0, fmt.Errorf("repl: truncated item %d", i)
		}
		seq := binary.BigEndian.Uint64(frame[at:])
		kind := frame[at+8]
		total := binary.BigEndian.Uint32(frame[at+9:])
		off := binary.BigEndian.Uint32(frame[at+13:])
		fl := binary.BigEndian.Uint32(frame[at+17:])
		at += itemHdr
		if kind != kindData && kind != kindCheckpoint {
			return nil, false, 0, fmt.Errorf("repl: item %d: unknown kind %#02x", i, kind)
		}
		if total > MaxRecordTotal || off > total || fl > total-off {
			return nil, false, 0, fmt.Errorf("repl: item %d: bad geometry total=%d off=%d frag=%d", i, total, off, fl)
		}
		if uint32(len(frame)-at) < fl {
			return nil, false, 0, fmt.Errorf("repl: item %d: truncated fragment", i)
		}
		items = append(items, Item{
			Seq:        seq,
			Checkpoint: kind == kindCheckpoint,
			Total:      total,
			Off:        off,
			Frag:       frame[at : at+int(fl)],
		})
		at += int(fl)
	}
	if at != len(frame) {
		return nil, false, 0, fmt.Errorf("repl: %d trailing bytes", len(frame)-at)
	}
	return items, flags&flagRebase != 0, term, nil
}

// ackData encodes a reply payload carrying the high-water sequence.
func ackData(high uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], high)
	return b[:]
}

// ParseAck decodes a ship reply's high-water sequence.
func ParseAck(data []byte) (uint64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("repl: ack payload of %d bytes", len(data))
	}
	return binary.BigEndian.Uint64(data), nil
}
