package repl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
	"amoeba/internal/svc"
	"amoeba/internal/wal"
)

// ReceiverStats counts replication traffic on the standby.
type ReceiverStats struct {
	Frames      uint64 // ship frames processed
	Applied     uint64 // records applied (incl. checkpoints)
	Skipped     uint64 // stale/duplicate items ignored
	Gaps        uint64 // frames rejected with a sequence gap
	Rebased     uint64 // base snapshots installed
	Checkpoints uint64 // in-stream checkpoints applied (standby log compactions)
	High        uint64 // durable high-water sequence
	Based       bool
}

// Receiver is the standby half of the replication channel: an RPC
// server on the backup machine's own private port that appends shipped
// records to the standby kernel's log and applies them to its state.
// The standby kernel must be durable, Recovered, and NOT Started — its
// state belongs to the stream until promotion. Batches are serialized
// by a mutex, so the service's replay applier runs single-threaded,
// exactly as it does during crash recovery.
//
// An acknowledgement (the high sequence in each reply) is sent only
// after the batch's records are durable on the standby's OWN log: a
// promoted backup that itself crashes still replays every record it
// ever acknowledged.
type Receiver struct {
	srv   *rpc.Server
	k     *svc.Kernel
	apply func(rec []byte) error
	now   func() time.Time

	// contact is the arrival time (unixnano) of the last TERM-VALID
	// ship frame — heartbeats included, OpSeq probes excluded (a
	// deposed primary's reprobes must not suppress the failure
	// detector). It is what the standby's Detector watches.
	contact atomic.Int64

	mu    sync.Mutex
	st    stream
	term  uint64 // highest replication epoch seen; lower-term frames bounce
	dead  error  // a failed commit on the standby's own log is fatal
	stats ReceiverStats
}

// NewReceiver builds a receiver feeding the standby kernel k, applying
// service records through apply (the same function the service hands to
// svc.Kernel.Recover). Call Start to begin listening; the receiver's
// port (a fresh private one, NOT the service port) is what the primary
// ships to.
func NewReceiver(fb *fbox.FBox, src crypto.Source, k *svc.Kernel, apply func(rec []byte) error) *Receiver {
	r := &Receiver{k: k, apply: apply, now: time.Now}
	r.srv = rpc.NewServer(fb, src)
	// Inline dispatch: the stream is serialized by r.mu anyway, so the
	// worker-pool handoff would buy nothing and cost two goroutine
	// switches on the path that gates the primary's client replies.
	r.srv.HandleInline(OpShip, r.handleShip)
	r.srv.HandleInline(OpSeq, r.handleSeq)
	return r
}

// Port returns the receiver's put-port (the shipper's destination).
func (r *Receiver) Port() cap.Port { return r.srv.PutPort() }

// SetClock injects the clock used for last-contact stamps (tests skew
// it); call before Start.
func (r *Receiver) SetClock(now func() time.Time) { r.now = now }

// Start begins receiving (advertises the private port for LOCATE).
// The contact clock starts now: a standby that never hears from its
// primary at all should still detect the silence, measured from its
// own birth rather than from a heartbeat that never came.
func (r *Receiver) Start() error {
	r.contact.Store(r.now().UnixNano())
	return r.srv.Start()
}

// LastContact returns the arrival time of the last term-valid ship
// frame (the failure detector's input).
func (r *Receiver) LastContact() time.Time {
	return time.Unix(0, r.contact.Load())
}

// Term returns the highest replication epoch this receiver has seen.
func (r *Receiver) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// Close stops the receiver. Promotion closes it before starting the
// service kernel, so a stale primary's ships bounce off a dead port
// instead of mutating a now-live service.
func (r *Receiver) Close() error { return r.srv.Close() }

// High returns the durable high-water sequence acknowledged so far.
func (r *Receiver) High() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st.high()
}

// Stats returns a snapshot of the counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.High = r.st.high()
	s.Based = r.st.based
	return s
}

// conflict is the sequence-gap rejection: the shipper reads the high
// water out of the payload and back-fills from there.
func conflict(high uint64) rpc.Reply {
	return rpc.Reply{Status: rpc.StatusConflict, Data: ackData(high)}
}

func (r *Receiver) handleShip(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
	items, rebase, term, err := Decode(req.Data)
	if err != nil {
		return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead != nil {
		return rpc.ErrReplyFromErr(r.dead)
	}
	// Epoch fencing: a frame from a lower term is a deposed primary's
	// — its stream must not touch this standby's state (and must not
	// read as a sign of life), it must learn it has been superseded.
	if term < r.term {
		return rpc.Reply{Status: rpc.StatusStale, Data: ackData(r.term)}
	}
	r.term = term
	r.contact.Store(r.now().UnixNano())
	if len(items) == 0 {
		// Heartbeat: nothing to apply, just acknowledge (the ack is
		// the lease grant) with the durable high water.
		r.stats.Frames++
		return rpc.OkReply(ackData(r.st.high()))
	}
	r.stats.Frames++
	gap := false
	var last *wal.Ticket
	for _, it := range items {
		v, rec, err := r.st.offer(it, rebase)
		if err != nil {
			r.st.reset()
			return rpc.ErrReply(rpc.StatusBadRequest, err.Error())
		}
		switch v {
		case vSkip:
			r.stats.Skipped++
		case vWait:
			// fragment buffered
		case vGap:
			gap = true
		case vApply:
			t, err := r.k.ReplicaApply(rec, r.apply)
			if err != nil {
				r.st.reset()
				return rpc.ErrReplyFromErr(err)
			}
			last = t
			r.st.applied(rec, rebase)
			r.stats.Applied++
			switch {
			case rebase:
				r.stats.Rebased++
			case rec.Checkpoint:
				r.stats.Checkpoints++
			}
		}
		if gap {
			break
		}
	}
	// Durability before acknowledgement: the standby's own log must
	// cover every record in the frame before its sequence counts as
	// high water. One inline flush + wait covers them all — the log
	// commits in stage order, so the LAST record's ticket implies the
	// rest (and a checkpoint's nil ticket was durable synchronously) —
	// and flushing on this goroutine keeps the ack (which gates the
	// primary's client reply) off the committer's wake-up latency. A failed
	// commit here is fatal: the stream has advanced past records the
	// standby's disk never took, so no later frame may be acknowledged
	// either — the shipper sees the persistent error and declares the
	// backup lost.
	if last != nil {
		r.k.Flush()
	}
	if err := last.Wait(); err != nil {
		r.dead = fmt.Errorf("repl: standby log failed: %w", err)
		return rpc.ErrReplyFromErr(r.dead)
	}
	if gap {
		r.stats.Gaps++
		return conflict(r.st.high())
	}
	return rpc.OkReply(ackData(r.st.high()))
}

func (r *Receiver) handleSeq(_ context.Context, _ rpc.Meta, _ rpc.Request) rpc.Reply {
	r.mu.Lock()
	defer r.mu.Unlock()
	// A standby whose own log wedged answers probes with its death, not
	// its high water: an OK here would invite the primary to re-base a
	// disk that takes nothing, and the ack quorum must not count us.
	if r.dead != nil {
		return rpc.ErrReplyFromErr(r.dead)
	}
	out := make([]byte, 0, 9)
	if r.st.based {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return rpc.OkReply(append(out, ackData(r.st.high())...))
}
