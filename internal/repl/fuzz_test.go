package repl

import (
	"bytes"
	"encoding/binary"
	"testing"

	"amoeba/internal/wal"
)

// FuzzDecode: arbitrary bytes never panic the ship-frame decoder, and
// everything Encode produces round-trips exactly.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{0x01, 0x00, 0x01, 0, 0, 0, 0, 0, 0, 0, 1, 2, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 4})
	for _, fr := range Encode([]wal.Record{
		{Seq: 1, Data: []byte("hello")},
		{Seq: 2, Checkpoint: true, Data: bytes.Repeat([]byte{7}, 300)},
	}, false, 3) {
		f.Add(fr.Payload)
	}
	f.Add(EncodeHeartbeat(9))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, rebase, _, err := Decode(data)
		if err != nil {
			return
		}
		// A decodable frame must re-encode its whole records losslessly:
		// feed items through a permissive stream and re-frame the output.
		_ = rebase
		for _, it := range items {
			if uint32(len(it.Frag)) > it.Total || it.Off > it.Total {
				t.Fatalf("decoder let bad geometry through: %+v", it)
			}
		}
	})
}

// FuzzEncodeRoundTrip: frames built from fuzz-derived records decode to
// exactly the bytes that went in.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte("a"), []byte("bb"), false)
	f.Add(uint64(900), bytes.Repeat([]byte{3}, 70000), []byte{}, true)
	f.Fuzz(func(t *testing.T, seq uint64, d1, d2 []byte, ck bool) {
		recs := []wal.Record{{Seq: seq, Checkpoint: ck, Data: d1}}
		if len(d2) > 0 {
			recs = append(recs, wal.Record{Seq: seq + 1, Data: d2})
		}
		st := &stream{based: true, expected: seq}
		var got []wal.Record
		for _, fr := range Encode(recs, false, seq^0xBEEF) {
			items, rebase, term, err := Decode(fr.Payload)
			if err != nil {
				t.Fatalf("self-encoded frame rejected: %v", err)
			}
			if term != seq^0xBEEF {
				t.Fatalf("term round-tripped to %d", term)
			}
			if fr.FirstSeq != items[0].Seq {
				t.Fatalf("frame FirstSeq %d, first item %d", fr.FirstSeq, items[0].Seq)
			}
			for _, it := range items {
				v, rec, err := st.offer(it, rebase)
				if err != nil {
					t.Fatal(err)
				}
				if v == vApply {
					got = append(got, rec)
					st.applied(rec, rebase)
				}
			}
		}
		if len(got) != len(recs) {
			t.Fatalf("round-tripped %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i].Seq != recs[i].Seq || got[i].Checkpoint != recs[i].Checkpoint ||
				!bytes.Equal(got[i].Data, recs[i].Data) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}

// FuzzStreamNeverDoubleApplies drives the sequencing core with an
// adversarial item schedule — stale, duplicate, reordered, gapped,
// fragmented — and asserts the exactly-once, in-order contract: every
// applied sequence is exactly expected, each applies once, and the
// horizon never moves backwards.
func FuzzStreamNeverDoubleApplies(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 2, 1, 9, 4})
	f.Add([]byte{5, 5, 5, 0, 0, 1, 2, 200, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		st := &stream{}
		applied := map[uint64]int{}
		var horizon uint64
		based := false
		for i, b := range script {
			// Derive an adversarial item from the script byte.
			seq := uint64(b % 16)
			rebase := b%7 == 0
			it := Item{
				Seq:        seq,
				Checkpoint: rebase || b%5 == 0,
				Total:      4,
				Off:        0,
				Frag:       []byte{1, 2, 3, 4},
			}
			if b%11 == 3 { // sometimes a fragment
				it.Frag = it.Frag[:2]
			}
			v, rec, err := st.offer(it, rebase)
			if err != nil {
				continue
			}
			if v != vApply {
				continue
			}
			st.applied(rec, rebase)
			if rebase {
				based = true
				if rec.Seq+1 < horizon {
					t.Fatalf("step %d: rebase rewound horizon %d -> %d", i, horizon, rec.Seq+1)
				}
				horizon = rec.Seq + 1
				continue
			}
			if !based {
				t.Fatalf("step %d: applied seq %d before any base", i, rec.Seq)
			}
			if rec.Seq != horizon {
				t.Fatalf("step %d: applied seq %d, horizon %d", i, rec.Seq, horizon)
			}
			applied[rec.Seq]++
			if applied[rec.Seq] > 1 {
				t.Fatalf("step %d: seq %d applied twice", i, rec.Seq)
			}
			horizon = rec.Seq + 1
		}
	})
}

// FuzzAckRoundTrip keeps the ack payload codec honest.
func FuzzAckRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1 << 60))
	f.Fuzz(func(t *testing.T, high uint64) {
		got, err := ParseAck(ackData(high))
		if err != nil || got != high {
			t.Fatalf("ack %d round-tripped to (%d, %v)", high, got, err)
		}
		var short [4]byte
		binary.BigEndian.PutUint32(short[:], uint32(high))
		if _, err := ParseAck(short[:]); err == nil {
			t.Fatal("short ack accepted")
		}
	})
}
