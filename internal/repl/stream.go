package repl

import (
	"fmt"

	"amoeba/internal/wal"
)

// verdict is stream.offer's decision for one item.
type verdict int

const (
	// vApply: the item completes a record; apply it, then call applied.
	vApply verdict = iota
	// vSkip: stale or duplicate — already applied, ignore.
	vSkip
	// vWait: a fragment was buffered; the record is not yet complete.
	vWait
	// vGap: the item's sequence is ahead of the stream — records were
	// lost in transit; reject the frame so the shipper back-fills.
	vGap
)

// stream is the receiver's sequencing core, kept free of I/O so the
// fuzz harness can drive it directly with adversarial inputs. It
// enforces the replication stream's safety rules:
//
//   - nothing applies before a base (rebase) checkpoint arrives;
//   - each record applies exactly once, in sequence order — stale and
//     duplicate items (network duplicates, RPC retries) are skipped,
//     future items (a gap) are rejected;
//   - fragments reassemble strictly in order, and a duplicate of the
//     frame that is mid-assembly re-offers its fragments harmlessly;
//   - a duplicate rebase that would rewind an already-advanced stream
//     (a delayed base frame redelivered by the network) is skipped.
//
// offer never mutates the applied horizon; the caller advances it with
// applied() only after the record really was applied, so an apply
// failure leaves the stream consistent for the shipper's retry.
type stream struct {
	based    bool
	expected uint64 // next sequence to apply
	part     *partial
}

// partial is a record mid-reassembly.
type partial struct {
	seq        uint64
	checkpoint bool
	rebase     bool
	total      uint32
	buf        []byte
}

// high is the acknowledged high-water sequence (0 before the base).
func (st *stream) high() uint64 {
	if !st.based || st.expected == 0 {
		return 0
	}
	return st.expected - 1
}

// reset drops any partial reassembly (after a failed apply, so the
// shipper's retry rebuilds the record from its first fragment).
func (st *stream) reset() { st.part = nil }

// offer examines one decoded item and says what to do with it. When it
// returns vApply, rec is the complete record; the caller applies it and
// then calls applied(rec, rebase).
func (st *stream) offer(it Item, rebase bool) (v verdict, rec wal.Record, err error) {
	if rebase {
		if !it.Checkpoint {
			return 0, rec, fmt.Errorf("repl: rebase item %d is not a checkpoint", it.Seq)
		}
		// A redelivered base from before the stream advanced must not
		// rewind state that newer records already moved.
		if st.based && it.Seq < st.expected {
			return vSkip, rec, nil
		}
		return st.assemble(it, true)
	}
	if !st.based {
		return vGap, rec, nil
	}
	switch {
	case it.Seq < st.expected:
		return vSkip, rec, nil
	case it.Seq > st.expected:
		return vGap, rec, nil
	}
	return st.assemble(it, false)
}

// assemble routes an in-sequence item through fragment reassembly.
func (st *stream) assemble(it Item, rebase bool) (verdict, wal.Record, error) {
	whole := it.Off == 0 && uint32(len(it.Frag)) == it.Total
	if whole {
		st.part = nil
		return vApply, wal.Record{Seq: it.Seq, Checkpoint: it.Checkpoint, Data: it.Frag}, nil
	}
	p := st.part
	if p == nil || p.seq != it.Seq || p.rebase != rebase {
		if it.Off != 0 {
			return vGap, wal.Record{}, nil // lost the head of this record
		}
		st.part = &partial{
			seq:        it.Seq,
			checkpoint: it.Checkpoint,
			rebase:     rebase,
			total:      it.Total,
			buf:        append(make([]byte, 0, it.Total), it.Frag...),
		}
		return st.finish()
	}
	if p.checkpoint != it.Checkpoint || p.total != it.Total {
		return 0, wal.Record{}, fmt.Errorf("repl: record %d fragments disagree on shape", it.Seq)
	}
	filled := uint32(len(p.buf))
	switch {
	case it.Off+uint32(len(it.Frag)) <= filled:
		return vSkip, wal.Record{}, nil // duplicate fragment (RPC retry)
	case it.Off == filled:
		p.buf = append(p.buf, it.Frag...)
		return st.finish()
	default:
		return vGap, wal.Record{}, nil // missing bytes between filled and Off
	}
}

// finish checks whether the partial under assembly is complete.
func (st *stream) finish() (verdict, wal.Record, error) {
	p := st.part
	if uint32(len(p.buf)) > p.total {
		st.part = nil
		return 0, wal.Record{}, fmt.Errorf("repl: record %d overflows its declared size", p.seq)
	}
	if uint32(len(p.buf)) < p.total {
		return vWait, wal.Record{}, nil
	}
	st.part = nil
	return vApply, wal.Record{Seq: p.seq, Checkpoint: p.checkpoint, Data: p.buf}, nil
}

// applied advances the stream past a successfully applied record.
func (st *stream) applied(rec wal.Record, rebase bool) {
	if rebase {
		st.based = true
	}
	st.expected = rec.Seq + 1
	st.part = nil
}
