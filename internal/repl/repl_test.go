package repl

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
	"amoeba/internal/svc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// counter is a minimal durable service over the kernel (the svc test
// toy): one op increments a named counter, logged as 0x01 ∥ name.
type counter struct {
	*svc.Kernel
	mu sync.Mutex
	n  map[string]uint64
}

const opInc uint16 = 0x0900

func (c *counter) apply(rec []byte) error {
	c.n[string(rec[1:])]++
	return nil
}

func (c *counter) get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[name]
}

func newCounter(t *testing.T, fb *fbox.FBox, log *wal.Log, g cap.Port) *counter {
	t.Helper()
	scheme, err := cap.NewScheme(cap.SchemeOneWay)
	if err != nil {
		t.Fatal(err)
	}
	c := &counter{n: make(map[string]uint64)}
	c.Kernel = svc.NewWithConfig(fb, scheme, svc.Config{
		Source: crypto.NewSeededSource(7),
		Port:   g,
		Log:    log,
		Snapshot: func() []byte {
			out := make([]byte, 4)
			binary.BigEndian.PutUint32(out, uint32(len(c.n)))
			for name, v := range c.n {
				out = append(out, byte(len(name)))
				out = append(out, name...)
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], v)
				out = append(out, b[:]...)
			}
			return out
		},
		Restore: func(snap []byte) error {
			m := make(map[string]uint64)
			cnt := binary.BigEndian.Uint32(snap)
			at := 4
			for i := uint32(0); i < cnt; i++ {
				nl := int(snap[at])
				name := string(snap[at+1 : at+1+nl])
				m[name] = binary.BigEndian.Uint64(snap[at+1+nl:])
				at += 9 + nl
			}
			c.n = m
			return nil
		},
	})
	c.Handle(opInc, func(_ context.Context, _ rpc.Meta, req rpc.Request) rpc.Reply {
		rec := append([]byte{0x01}, req.Data...)
		c.mu.Lock()
		tk, err := c.Append(rec)
		if err != nil {
			c.mu.Unlock()
			return rpc.ErrReplyFromErr(err)
		}
		c.n[string(req.Data)]++
		c.mu.Unlock()
		if err := tk.Wait(); err != nil {
			return rpc.ErrReplyFromErr(err)
		}
		return rpc.OkReply(nil)
	})
	if err := c.Recover(c.apply); err != nil {
		t.Fatal(err)
	}
	return c
}

// rig is a SimNet with a client machine and an attach helper.
type rig struct {
	net    *amnet.SimNet
	client *rpc.Client
	t      *testing.T
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	r := &rig{net: n, t: t}
	cfb := r.attach()
	res := locate.New(cfb, locate.Config{})
	r.client = rpc.NewClient(cfb, res, rpc.ClientConfig{Source: crypto.NewSeededSource(9)})
	return r
}

func (r *rig) attach() *fbox.FBox {
	r.t.Helper()
	nic, err := r.net.Attach()
	if err != nil {
		r.t.Fatal(err)
	}
	fb := fbox.New(nic, nil)
	r.t.Cleanup(func() { fb.Close() })
	return fb
}

func (r *rig) newClientOn(fb *fbox.FBox) *rpc.Client {
	res := locate.New(fb, locate.Config{})
	return rpc.NewClient(fb, res, rpc.ClientConfig{Source: crypto.NewSeededSource(11)})
}

// replicatedCounter stands up primary + standby + receiver + shipper.
type replicatedCounter struct {
	primary, backup         *counter
	primaryFB, backupFB     *fbox.FBox
	primaryDisk, backupDisk *vdisk.Disk
	recv                    *Receiver
	ship                    *Shipper
}

func newReplicatedCounter(t *testing.T, r *rig, preOps int) *replicatedCounter {
	return newReplicatedCounterOpts(t, r, preOps, Options{})
}

func newReplicatedCounterOpts(t *testing.T, r *rig, preOps int, o Options) *replicatedCounter {
	t.Helper()
	ctx := context.Background()
	rc := &replicatedCounter{}
	var err error
	if rc.primaryDisk, err = vdisk.New(512, 256); err != nil {
		t.Fatal(err)
	}
	plog, err := wal.Open(rc.primaryDisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc.primaryFB = r.attach()
	rc.primary = newCounter(t, rc.primaryFB, plog, 0)
	if err := rc.primary.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.primary.Close() })

	// Mutations BEFORE the backup attaches arrive via the base snapshot.
	for i := 0; i < preOps; i++ {
		if _, err := r.client.Trans(ctx, rc.primary.PutPort(), rpc.Request{Op: opInc, Data: []byte("pre")}); err != nil {
			t.Fatal(err)
		}
	}

	if rc.backupDisk, err = vdisk.New(512, 256); err != nil {
		t.Fatal(err)
	}
	blog, err := wal.Open(rc.backupDisk, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc.backupFB = r.attach()
	rc.backup = newCounter(t, rc.backupFB, blog, rc.primary.GetPort())
	t.Cleanup(func() { rc.backup.Close() })
	rc.recv = NewReceiver(rc.backupFB, crypto.NewSeededSource(13), rc.backup.Kernel, rc.backup.apply)
	if err := rc.recv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.recv.Close() })

	rc.ship, err = Attach(rc.primary.Kernel, r.newClientOn(rc.primaryFB), rc.recv.Port(), o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.ship.Stop)
	return rc
}

// TestShipperDeclaresBackupLost: a standby that stops acknowledging
// must not wedge the primary — after the attempt budget the backup is
// declared lost, the stream detaches, and clients keep getting served
// (availability over replication).
func TestShipperDeclaresBackupLost(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	rc := newReplicatedCounterOpts(t, r, 0, Options{
		Timeout: 20 * time.Millisecond, Attempts: 2, Backoff: time.Millisecond,
	})
	port := rc.primary.PutPort()

	if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	// The backup machine dies silently.
	if err := rc.recv.Close(); err != nil {
		t.Fatal(err)
	}
	// The op during the outage stalls for the attempt budget (which
	// includes the shipper's futile LOCATE re-broadcasts), then the
	// backup is written off and the reply still goes out. One client
	// attempt with a generous timeout, so the stall isn't mistaken for
	// a lost frame and retried into a double-increment.
	if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("during")},
		rpc.WithTimeout(30*time.Second), rpc.WithRetries(0)); err != nil {
		t.Fatalf("primary wedged behind a dead backup: %v", err)
	}
	if !rc.ship.Lost() {
		t.Fatal("shipper never declared the backup lost")
	}
	// Later ops skip the dead stream entirely.
	if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("after")}); err != nil {
		t.Fatal(err)
	}
	if rc.primary.get("ok")+rc.primary.get("during")+rc.primary.get("after") != 3 {
		t.Fatal("primary lost operations")
	}
	s := rc.ship.Stats()
	if !s.Lost || s.Retries == 0 {
		t.Fatalf("loss not recorded: %+v", s)
	}
}

// TestShipPromoteEndToEnd: base snapshot, synchronous shipping, primary
// crash, promotion at the same put-port, and the standby's own
// durability — the whole hot-standby life cycle on one rig.
func TestShipPromoteEndToEnd(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	rc := newReplicatedCounter(t, r, 3)
	port := rc.primary.PutPort()

	for i := 0; i < 7; i++ {
		if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("live")}); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous shipping: the moment the last reply arrived, the
	// standby has applied (and locally committed) every operation.
	if got := rc.backup.get("pre"); got != 3 {
		t.Fatalf("standby pre-count %d, want 3 (base snapshot)", got)
	}
	if got := rc.backup.get("live"); got != 7 {
		t.Fatalf("standby live-count %d, want 7 (stream)", got)
	}
	if lag := rc.ship.Lag(); lag != 0 {
		t.Fatalf("healthy synchronous stream lags %d records", lag)
	}

	// The standby's own WAL must already hold everything it ever
	// acknowledged: recover a crash image of the BACKUP's disk.
	img, err := wal.Open(rc.backupDisk.Clone(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reborn := newCounter(t, r.attach(), img, 0)
	defer reborn.Close()
	if got := reborn.get("pre") + reborn.get("live"); got != 10 {
		t.Fatalf("standby disk image replays %d ops, want 10", got)
	}

	// Kill the primary: NIC off, no flush, no checkpoint.
	rc.ship.Stop()
	rc.primaryFB.Close()
	if err := rc.primary.Crash(); err != nil {
		t.Fatal(err)
	}
	// Promote: receiver stops, the standby kernel starts — same
	// put-port, new machine; the client's stale route heals via LOCATE.
	if err := rc.recv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.backup.Start(); err != nil {
		t.Fatal(err)
	}
	if rc.backup.PutPort() != port {
		t.Fatal("promotion changed the put-port")
	}
	for i := 0; i < 4; i++ {
		if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("after")}); err != nil {
			t.Fatalf("op %d against the promoted standby: %v", i, err)
		}
	}
	if got := rc.backup.get("live"); got != 7 {
		t.Fatalf("promoted standby lost stream ops: live=%d, want 7", got)
	}
	if got := rc.backup.get("after"); got != 4 {
		t.Fatalf("promoted standby after-count %d, want 4", got)
	}
}

// TestShipperHealsGapByCatchUp: records committed while the sink was
// detached (a dropped shipment) make the receiver reject the next batch
// with a sequence gap; the shipper must back-fill from its own log
// (wal.ReadFrom) and converge without double-applying anything.
func TestShipperHealsGapByCatchUp(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	rc := newReplicatedCounter(t, r, 0)
	port := rc.primary.PutPort()

	for i := 0; i < 3; i++ {
		if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("a")}); err != nil {
			t.Fatal(err)
		}
	}
	// Silently drop the stream: commits keep landing on the primary's
	// log but stop reaching the standby.
	rc.primary.DetachReplica()
	for i := 0; i < 4; i++ {
		if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("b")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rc.backup.get("b"); got != 0 {
		t.Fatalf("standby saw %d dropped records", got)
	}
	// Hand the shipper only the records that commit after re-attach:
	// the receiver sees a gap and the shipper must heal it.
	next := rc.primary.NextSeq()
	var tail []wal.Record
	if err := rc.primary.ReadFrom(next-1, func(rec wal.Record) error {
		rec.Data = append([]byte(nil), rec.Data...)
		tail = append(tail, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 {
		t.Fatalf("tail scan found %d records, want 1", len(tail))
	}
	rc.ship.sink(tail)
	if got := rc.backup.get("b"); got != 4 {
		t.Fatalf("after catch-up standby b-count %d, want 4", got)
	}
	if got := rc.backup.get("a"); got != 3 {
		t.Fatalf("catch-up disturbed earlier records: a-count %d, want 3", got)
	}
	if s := rc.ship.Stats(); s.CatchUp == 0 {
		t.Fatalf("no catch-up recorded: %+v", s)
	}
	if s := rc.recv.Stats(); s.Gaps == 0 {
		t.Fatalf("receiver never saw the gap: %+v", s)
	}
}

// TestReceiverRejectsStaleDupAndGap drives the receiver's RPC surface
// raw: duplicates and stale batches are skipped idempotently, gaps are
// rejected with StatusConflict, garbage is rejected without panic.
func TestReceiverRejectsStaleDupAndGap(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	rc := newReplicatedCounter(t, r, 0)
	port := rc.primary.PutPort()

	for i := 0; i < 5; i++ {
		if _, err := r.client.Trans(ctx, port, rpc.Request{Op: opInc, Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	high := rc.recv.High()
	raw := r.newClientOn(r.attach())

	// A duplicate of an already-applied record: skipped, same high.
	dup := Encode([]wal.Record{{Seq: high, Data: []byte{0x01, 'x'}}}, false, 0)
	rep, err := raw.Trans(ctx, rc.recv.Port(), rpc.Request{Op: OpShip, Data: dup[0].Payload})
	if err != nil || rep.Status != rpc.StatusOK {
		t.Fatalf("dup ship: %v %+v", err, rep)
	}
	if got, _ := ParseAck(rep.Data); got != high {
		t.Fatalf("dup ship moved high %d -> %d", high, got)
	}
	if got := rc.backup.get("x"); got != 5 {
		t.Fatalf("duplicate was applied twice: x=%d", got)
	}

	// A future record (sequence gap): StatusConflict carrying high.
	gap := Encode([]wal.Record{{Seq: high + 5, Data: []byte{0x01, 'x'}}}, false, 0)
	rep, err = raw.Trans(ctx, rc.recv.Port(), rpc.Request{Op: OpShip, Data: gap[0].Payload})
	if err != nil || rep.Status != rpc.StatusConflict {
		t.Fatalf("gap ship: %v %+v", err, rep)
	}
	if got, _ := ParseAck(rep.Data); got != high {
		t.Fatalf("gap nack reports high %d, want %d", got, high)
	}
	if got := rc.backup.get("x"); got != 5 {
		t.Fatalf("gap record was applied: x=%d", got)
	}

	// Garbage: rejected, no panic, stream unharmed.
	for _, junk := range [][]byte{nil, {0xFF}, {0x00, 0xFF, 0xFF, 1, 2, 3}, make([]byte, 100)} {
		rep, err = raw.Trans(ctx, rc.recv.Port(), rpc.Request{Op: OpShip, Data: junk})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status == rpc.StatusOK {
			t.Fatalf("garbage frame %x accepted", junk)
		}
	}
	if rc.recv.High() != high {
		t.Fatal("junk moved the high water")
	}

	// OpSeq reports based + high.
	rep, err = raw.Trans(ctx, rc.recv.Port(), rpc.Request{Op: OpSeq})
	if err != nil || rep.Status != rpc.StatusOK || len(rep.Data) != 9 {
		t.Fatalf("seq query: %v %+v", err, rep)
	}
	if rep.Data[0] != 1 {
		t.Fatal("receiver reports un-based after a base")
	}
	if got := binary.BigEndian.Uint64(rep.Data[1:]); got != high {
		t.Fatalf("seq query high %d, want %d", got, high)
	}
}

// TestShipFragmentedRecord: a record bigger than one frame crosses the
// channel in fragments and reassembles exactly once.
func TestShipFragmentedRecord(t *testing.T) {
	big := make([]byte, MaxShipBytes*2+1234)
	for i := range big {
		big[i] = byte(i * 31)
	}
	frames := Encode([]wal.Record{{Seq: 42, Data: big}}, false, 0)
	if len(frames) < 3 {
		t.Fatalf("big record packed into %d frames, want ≥ 3", len(frames))
	}
	st := &stream{based: true, expected: 42}
	var got []wal.Record
	for _, f := range frames {
		items, rebase, _, err := Decode(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			v, rec, err := st.offer(it, rebase)
			if err != nil {
				t.Fatal(err)
			}
			switch v {
			case vApply:
				got = append(got, rec)
				st.applied(rec, rebase)
			case vWait:
			default:
				t.Fatalf("verdict %v for an in-order fragment", v)
			}
		}
	}
	if len(got) != 1 || got[0].Seq != 42 || len(got[0].Data) != len(big) {
		t.Fatalf("reassembly produced %d records", len(got))
	}
	for i := range big {
		if got[0].Data[i] != big[i] {
			t.Fatalf("byte %d diverged", i)
		}
	}
}
