package repl

import (
	"context"
	"errors"
	"sync"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/svc"
	"amoeba/internal/wal"
)

// ErrBackupLost is recorded when the backup stops acknowledging for
// Options.Attempts consecutive tries: the primary keeps serving
// (availability over replication) and drops the stream; attach a fresh
// backup to re-replicate.
var ErrBackupLost = errors.New("repl: backup lost (stopped acknowledging)")

// Options tunes a shipper. The zero value gets sensible defaults.
type Options struct {
	// Timeout bounds one ship RPC attempt (default 1s).
	Timeout time.Duration
	// Attempts is how many consecutive failures the shipper tolerates
	// before declaring the backup lost (default 8). Each attempt
	// already carries the RPC client's own retries, so a lost frame or
	// two never burns an attempt.
	Attempts int
	// Backoff is the pause between failed attempts (default 5ms).
	Backoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 8
	}
	if o.Backoff <= 0 {
		o.Backoff = 5 * time.Millisecond
	}
	return o
}

// ShipperStats counts replication traffic on the primary.
type ShipperStats struct {
	Batches uint64 // commit batches offered by the log's sink
	Frames  uint64 // ship frames sent (incl. catch-up and retries)
	Records uint64 // records shipped (first transmission)
	Retries uint64 // failed attempts that were retried
	CatchUp uint64 // records re-shipped after a receiver gap
	Dropped uint64 // records NOT shipped (stopped or lost)
	Acked   uint64 // receiver's durable high-water sequence
	Lost    bool   // the backup was declared lost
}

// Shipper is the primary half of the replication channel. Attach wires
// it into a durable kernel's commit path: the kernel quiesces, ships a
// base snapshot (so the standby starts from the primary's exact state),
// and installs the shipper as the log's commit sink. From then on every
// group commit's records are shipped synchronously — the commit's
// tickets (and therefore the clients' replies) wait for the standby's
// durable acknowledgement. One ship RPC per commit batch: replication
// rides group commit and adds no fsyncs on the primary.
//
// Failure policy: a sequence-gap rejection is healed in place by
// re-shipping from the receiver's high water (wal.ReadFrom); transport
// failures are retried Options.Attempts times and then the backup is
// declared lost — the primary answers on, unreplicated, rather than
// stalling its clients forever behind a dead standby.
type Shipper struct {
	k    *svc.Kernel
	c    *rpc.Client
	dest cap.Port
	o    Options

	ctx    context.Context
	cancel context.CancelFunc
	opts   []rpc.CallOption // per-attempt timeout/retries, built once

	// mu serializes every ship path (the committer's sink calls and the
	// base ship) and guards the state below.
	mu      sync.Mutex
	stopped bool
	lost    bool
	stats   ShipperStats
}

// Attach starts replicating kernel k to the receiver at dest, shipping
// through client c (a client on the primary's machine). It returns once
// the standby holds the primary's base snapshot; every mutation the
// primary acknowledges afterwards is on the standby first.
func Attach(k *svc.Kernel, c *rpc.Client, dest cap.Port, o Options) (*Shipper, error) {
	s := &Shipper{k: k, c: c, dest: dest, o: o.withDefaults()}
	s.opts = []rpc.CallOption{rpc.WithTimeout(s.o.Timeout), rpc.WithRetries(1)}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	err := k.AttachReplica(func(snap []byte, next uint64) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		// Seq next-1 makes the receiver expect exactly the next record
		// the primary will commit.
		return s.shipLocked([]wal.Record{{Seq: next - 1, Checkpoint: true, Data: snap}}, true)
	}, s.sink)
	if err != nil {
		s.cancel()
		return nil, err
	}
	return s, nil
}

// Stop detaches the shipper from the kernel and aborts any in-flight
// ship RPC. Records committed after Stop are not shipped. Kill and
// Promote paths call it; it is idempotent.
func (s *Shipper) Stop() {
	s.cancel() // first: unblocks a sink mid-RPC so the lock frees fast
	s.k.DetachReplica()
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// Lost reports whether the backup was declared lost.
func (s *Shipper) Lost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// Lag returns how many committed records the backup has not yet
// acknowledged (0 on a healthy synchronous stream).
func (s *Shipper) Lag() uint64 {
	s.mu.Lock()
	acked := s.stats.Acked
	s.mu.Unlock()
	head := s.k.NextSeq() - 1
	if head <= acked {
		return 0
	}
	return head - acked
}

// Stats returns a snapshot of the counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// sink is the log's commit sink: called from the single committer
// goroutine, after the local sync, before the batch's tickets complete.
func (s *Shipper) sink(recs []wal.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped || s.lost {
		s.stats.Dropped += uint64(len(recs))
		return
	}
	s.stats.Batches++
	s.stats.Records += uint64(len(recs))
	_ = s.shipLocked(recs, false) // loss is recorded in s.lost/stats
}

// shipLocked ships recs (already in sequence order) under s.mu.
func (s *Shipper) shipLocked(recs []wal.Record, rebase bool) error {
	end := recs[len(recs)-1].Seq + 1
	for _, frame := range Encode(recs, rebase) {
		if err := s.sendFrame(frame, end, rebase); err != nil {
			return err
		}
	}
	return nil
}

// sendFrame delivers one frame. A sequence-gap rejection is healed by
// re-shipping everything from the receiver's high water through the end
// of the batch out of the primary's own log (every batch record is
// committed before the sink runs, so the log has them all); transport
// failures are retried until the attempt budget is spent.
func (s *Shipper) sendFrame(frame Frame, batchEnd uint64, rebase bool) error {
	fails := 0
	for {
		if s.ctx.Err() != nil {
			s.stats.Dropped++
			return s.ctx.Err()
		}
		s.stats.Frames++
		// s.ctx carries only cancellation (Stop); the per-attempt
		// timeout rides the call option, so no deadline context is
		// built on this hot path.
		rep, err := s.c.Trans(s.ctx, s.dest, rpc.Request{Op: OpShip, Data: frame.Payload}, s.opts...)
		if err == nil {
			switch rep.Status {
			case rpc.StatusOK:
				if high, aerr := ParseAck(rep.Data); aerr == nil && high > s.stats.Acked {
					s.stats.Acked = high
				}
				return nil
			case rpc.StatusConflict:
				// A rebase frame can never gap; for the in-sequence
				// stream, back-fill from the receiver's high water. If
				// the catch-up covers the whole batch, this frame (and
				// the batch's remaining frames, as duplicates) is done.
				high, aerr := ParseAck(rep.Data)
				if aerr == nil && !rebase {
					if high+1 < batchEnd {
						if cerr := s.catchUp(high+1, batchEnd); cerr != nil {
							return cerr
						}
					}
					if s.stats.Acked >= batchEnd-1 {
						return nil
					}
				}
			}
		}
		fails++
		s.stats.Retries++
		if fails >= s.o.Attempts {
			s.lost = true
			s.stats.Lost = true
			s.k.DetachReplica()
			return ErrBackupLost
		}
		select {
		case <-s.ctx.Done():
		case <-time.After(s.o.Backoff):
		}
	}
}

// catchUp re-ships the committed records in [from, to) out of the
// primary's own log. ErrSeqTruncated cannot normally happen — the
// receiver's high water only trails records it was already shipped,
// which a checkpoint cannot outrun because checkpoints ship through the
// same ordered stream — so it is treated as a lost backup.
func (s *Shipper) catchUp(from, to uint64) error {
	batch := make([]wal.Record, 0, 64)
	size := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		s.stats.CatchUp += uint64(len(batch))
		for _, frame := range Encode(batch, false) {
			if err := s.sendCatchUpFrame(frame.Payload); err != nil {
				return err
			}
		}
		batch, size = batch[:0], 0
		return nil
	}
	err := s.k.ReadFrom(from, func(r wal.Record) error {
		if r.Seq >= to {
			return errStopScan
		}
		// ReadFrom's record data aliases its scan buffer; copy for the
		// frames we batch up.
		r.Data = append([]byte(nil), r.Data...)
		batch = append(batch, r)
		size += len(r.Data)
		if size >= MaxShipBytes {
			return flush()
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return err
	}
	return flush()
}

var errStopScan = errors.New("repl: scan complete")

// sendCatchUpFrame is sendFrame without gap-healing (catch-up must not
// recurse); a conflict here means the receiver advanced meanwhile,
// which the outer retry resolves.
func (s *Shipper) sendCatchUpFrame(frame []byte) error {
	fails := 0
	for {
		if s.ctx.Err() != nil {
			return s.ctx.Err()
		}
		s.stats.Frames++
		rep, err := s.c.Trans(s.ctx, s.dest, rpc.Request{Op: OpShip, Data: frame}, s.opts...)
		if err == nil && (rep.Status == rpc.StatusOK || rep.Status == rpc.StatusConflict) {
			if high, aerr := ParseAck(rep.Data); aerr == nil && high > s.stats.Acked {
				s.stats.Acked = high
			}
			return nil
		}
		fails++
		s.stats.Retries++
		if fails >= s.o.Attempts {
			s.lost = true
			s.stats.Lost = true
			s.k.DetachReplica()
			return ErrBackupLost
		}
		select {
		case <-s.ctx.Done():
		case <-time.After(s.o.Backoff):
		}
	}
}
