package repl

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/cap"
	"amoeba/internal/rpc"
	"amoeba/internal/svc"
	"amoeba/internal/wal"
)

// ErrBackupLost is recorded when a backup stops acknowledging for
// Options.Attempts consecutive tries: the primary keeps serving
// (availability over replication) and stops shipping to that peer — but
// unlike a write-off, a slow re-probe keeps ticking, and when the peer
// answers again it is re-based through the snapshot path and rejoins
// the stream with no operator involved.
var ErrBackupLost = errors.New("repl: backup lost (stopped acknowledging)")

// Options tunes a shipper. The zero value gets sensible defaults
// (single-backup legacy mode: no lease, no heartbeats, term 0).
type Options struct {
	// Timeout bounds one ship RPC attempt (default 1s).
	Timeout time.Duration
	// Attempts is how many consecutive failures the shipper tolerates
	// before declaring a backup lost (default 8). Each attempt
	// already carries the RPC client's own retries, so a lost frame or
	// two never burns an attempt.
	Attempts int
	// Backoff is the pause between failed attempts (default 5ms).
	Backoff time.Duration
	// Reprobe is the interval at which LOST peers are probed for signs
	// of life (default 16×Backoff). A transient partition or a long GC
	// pause on a standby used to write it off permanently; now contact
	// triggers a re-base via the snapshot path.
	Reprobe time.Duration
	// LeaseTerm, when positive, enables group mode: the shipper sends
	// bare heartbeat frames at LeaseTerm/3 when the stream is idle,
	// counts each peer's acknowledgement (of anything) as a lease
	// grant, and Fence refuses acknowledgements once a majority of the
	// configured group has been silent for a full term.
	LeaseTerm time.Duration
	// GroupSize is the configured replica count N (primary plus all
	// standbys, including currently-dead ones) that majorities are
	// computed against; 0 defaults to 1+len(peers) at attach.
	GroupSize int
	// Term is the replication epoch stamped on every frame this
	// shipper sends. A receiver that has adopted a higher term rejects
	// the frame with rpc.StatusStale and the shipper goes deposed.
	Term uint64
	// Now is the clock used for lease accounting (nil selects
	// time.Now; the clock-skew tests inject offsets).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 8
	}
	if o.Backoff <= 0 {
		o.Backoff = 5 * time.Millisecond
	}
	if o.Reprobe <= 0 {
		o.Reprobe = 16 * o.Backoff
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ShipperStats counts replication traffic on the primary.
type ShipperStats struct {
	Batches    uint64 // commit batches offered by the log's sink
	Frames     uint64 // ship frames sent (incl. catch-up, heartbeats, retries)
	Records    uint64 // records shipped (first transmission)
	Retries    uint64 // failed attempts that were retried
	CatchUp    uint64 // records re-shipped after a receiver gap
	Dropped    uint64 // records NOT shipped to some peer (stopped or lost)
	Acked      uint64 // highest durable high-water sequence any peer acked
	Heartbeats uint64 // bare lease-renewal frames sent
	Rebases    uint64 // peers re-based after loss or (re)join
	Lost       bool   // every peer is currently lost
	Sealed     bool   // a batch missed majority; acknowledgements fenced
	Deposed    bool   // a newer term was observed; this primary is done
	Demoted    bool   // local WAL wedged; this primary renounced leadership
}

// peer is one standby's shipping state. Frames to a peer are
// serialized by its own mutex (the commit sink, heartbeats and a
// re-base must not interleave on one stream), so slow peers only slow
// themselves.
type peer struct {
	dest cap.Port

	mu    sync.Mutex // serializes frames to this peer
	fails int        // consecutive failed attempts (under mu)

	lost  atomic.Bool
	acked atomic.Uint64 // this peer's durable high water
	grant atomic.Int64  // unixnano SEND time of the last acked frame
}

// Shipper is the primary half of the replication channel, feeding N
// standbys from one commit sink. Attach wires it into a durable
// kernel's commit path: the kernel quiesces, ships a base snapshot to
// every peer, and installs the shipper as the log's commit sink. From
// then on every group commit's records are shipped to all live peers in
// parallel — the commit's tickets (and therefore the clients' replies)
// wait for every live standby's durable acknowledgement, so a double
// failure still loses nothing that was acknowledged.
//
// Group mode (Options.LeaseTerm > 0) adds leased leadership: every
// acknowledged frame doubles as a lease grant timestamped at its SEND
// time, bare heartbeats renew grants when the stream is idle, and
// Fence — installed as the kernel's replica fence and admission gate —
// refuses acknowledgements when a majority of the configured group has
// been silent for a full term (the lease lapsed), when a committed
// batch failed to reach a majority (sealed), or when a peer reported a
// newer term (deposed). That is the split-brain guard: an isolated old
// primary stops acknowledging strictly before the standbys' failure
// detectors (lease term + skew) can elect a successor.
//
// Failure policy per peer: a sequence-gap rejection is healed in place
// by re-shipping from that receiver's high water (wal.ReadFrom);
// transport failures are retried Options.Attempts times and then the
// peer is marked lost — shipped around, slow-reprobed, and re-based
// through the snapshot path when it answers again.
type Shipper struct {
	k *svc.Kernel
	c *rpc.Client
	o Options

	ctx    context.Context
	cancel context.CancelFunc
	opts   []rpc.CallOption // per-attempt timeout/retries, built once
	hbOpts []rpc.CallOption // heartbeat-only: one short attempt (see below)

	sealed  atomic.Bool
	deposed atomic.Bool
	demoted atomic.Bool

	// mu guards the peer list and stats; the ship paths themselves run
	// outside it (per-peer mutexes serialize each stream) so a stalled
	// peer cannot wedge Stats or Fence.
	mu      sync.Mutex
	peers   []*peer
	stopped bool
	stats   ShipperStats

	wg sync.WaitGroup // heartbeat + reprobe loops
}

// Attach starts replicating kernel k to the single receiver at dest,
// shipping through client c (a client on the primary's machine) — the
// legacy one-standby mode: manual promotion, no lease. It returns once
// the standby holds the primary's base snapshot; every mutation the
// primary acknowledges afterwards is on the standby first.
func Attach(k *svc.Kernel, c *rpc.Client, dest cap.Port, o Options) (*Shipper, error) {
	return AttachGroup(k, c, []cap.Port{dest}, o)
}

// AttachGroup starts replicating kernel k to the receivers at dests.
// With Options.LeaseTerm set this is a replication group: all-live-peer
// synchronous shipping, lease-fenced acknowledgements, heartbeats.
func AttachGroup(k *svc.Kernel, c *rpc.Client, dests []cap.Port, o Options) (*Shipper, error) {
	s := &Shipper{k: k, c: c, o: o.withDefaults()}
	if s.o.GroupSize <= 0 {
		s.o.GroupSize = 1 + len(dests)
	}
	// WithRawStale on both option sets: StatusStale IS the replication
	// protocol's term fence — the shipper must see it and depose, not
	// have the client swallow it into an evict-and-relocate dance.
	s.opts = []rpc.CallOption{rpc.WithTimeout(s.o.Timeout), rpc.WithRetries(1), rpc.WithRawStale()}
	if s.o.LeaseTerm > 0 {
		// Heartbeats: ONE attempt, bounded by the tick interval. A grant
		// is stamped at send time, so an attempt that drags (or a retry
		// after a lost first attempt) stores a grant that is already
		// stale when it lands — under load that can wedge a lapsed lease
		// permanently, because the fence blocks the data traffic that
		// would otherwise renew it. Better to abandon a slow attempt and
		// re-stamp fresh at the next tick.
		s.hbOpts = []rpc.CallOption{rpc.WithTimeout(s.o.LeaseTerm / 3), rpc.WithRetries(0), rpc.WithRawStale()}
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for _, d := range dests {
		s.peers = append(s.peers, &peer{dest: d})
	}
	err := k.AttachReplica(func(snap []byte, next uint64) error {
		// Seq next-1 makes every receiver expect exactly the next
		// record the primary will commit.
		base := []wal.Record{{Seq: next - 1, Checkpoint: true, Data: snap}}
		for _, p := range s.peers {
			if err := s.shipToPeer(p, Encode(base, true, s.o.Term), next, true); err != nil {
				return err
			}
		}
		return nil
	}, s.sink)
	if err != nil {
		s.cancel()
		return nil, err
	}
	// A wedged WAL is a gray failure the group cannot see: the machine
	// keeps heartbeating while its disk silently takes nothing. Convert
	// it to the failure the detectors WERE built for — the primary
	// renounces leadership the moment its log wedges.
	k.OnWedge(func(error) { s.SelfDemote() })
	if s.o.LeaseTerm > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	s.wg.Add(1)
	go s.reprobeLoop()
	return s, nil
}

// Stop detaches the shipper from the kernel, aborts any in-flight ship
// RPC and stops the heartbeat/reprobe loops. Records committed after
// Stop are not shipped. Kill and Promote paths call it; idempotent.
func (s *Shipper) Stop() {
	s.cancel() // first: unblocks a sink mid-RPC so the lock frees fast
	s.k.DetachReplica()
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.wg.Wait()
}

// Lost reports whether every peer is currently lost (for the single-
// backup legacy mode: whether THE backup is lost). A lost peer can
// come back: the reprobe loop re-bases it on contact.
func (s *Shipper) Lost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.peers) == 0 {
		return false
	}
	for _, p := range s.peers {
		if !p.lost.Load() {
			return false
		}
	}
	return true
}

// LostPeers returns how many peers are currently marked lost.
func (s *Shipper) LostPeers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.peers {
		if p.lost.Load() {
			n++
		}
	}
	return n
}

// Term returns the replication epoch this shipper stamps on frames.
func (s *Shipper) Term() uint64 { return s.o.Term }

// Lag returns how many committed records the slowest live peer has not
// yet acknowledged (0 on a healthy synchronous stream).
func (s *Shipper) Lag() uint64 {
	s.mu.Lock()
	low := uint64(0)
	any := false
	for _, p := range s.peers {
		if p.lost.Load() {
			continue
		}
		a := p.acked.Load()
		if !any || a < low {
			low, any = a, true
		}
	}
	if !any {
		low = s.stats.Acked
	}
	s.mu.Unlock()
	head := s.k.NextSeq() - 1
	if head <= low {
		return 0
	}
	return head - low
}

// Stats returns a snapshot of the counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Sealed = s.sealed.Load()
	st.Deposed = s.deposed.Load()
	st.Demoted = s.demoted.Load()
	st.Lost = len(s.peers) > 0
	for _, p := range s.peers {
		if !p.lost.Load() {
			st.Lost = false
		}
		if a := p.acked.Load(); a > st.Acked {
			st.Acked = a
		}
	}
	return st
}

// majority is the quorum size over the CONFIGURED group — dead peers
// still count toward N, which is exactly what makes the arithmetic a
// split-brain guard rather than an echo chamber.
func (s *Shipper) majority() int { return s.o.GroupSize/2 + 1 }

// LeaseValid reports whether a majority of the group (counting the
// primary itself) has granted a lease renewal within the last term.
// Grants are timestamped at frame SEND time, so the primary's view of
// its lease is pessimistic by exactly the network delay — the safe
// direction.
func (s *Shipper) LeaseValid() bool {
	if s.o.LeaseTerm <= 0 {
		return true
	}
	now := s.o.Now()
	grants := 1 // the primary grants to itself
	s.mu.Lock()
	peers := append([]*peer(nil), s.peers...)
	s.mu.Unlock()
	for _, p := range peers {
		if g := p.grant.Load(); g != 0 && now.Sub(time.Unix(0, g)) <= s.o.LeaseTerm {
			grants++
		}
	}
	return grants >= s.majority()
}

// Fence is the acknowledgement guard a group primary installs as its
// kernel's replica fence and admission gate: nil while this shipper is
// entitled to acknowledge durable operations.
func (s *Shipper) Fence() error {
	switch {
	case s.demoted.Load():
		return ErrSelfDemoted
	case s.deposed.Load():
		return ErrDeposed
	case s.sealed.Load():
		return ErrSealed
	case !s.LeaseValid():
		return ErrLeaseLapsed
	}
	return nil
}

// / Depose marks this shipper permanently done: a successor has been (or
// is being) elected at a newer term. The fence refuses from here on
// with ErrDeposed — which wraps rpc.ErrStaleAuthority, so clients stop
// waiting out overload backoffs and re-locate at once — and shipping
// and heartbeats fall silent. An election MUST call this before
// choosing its winner: once Depose returns, no further operation can
// be acknowledged at the old term, so the highest standby high water
// read afterwards bounds every acknowledged op. Internally it is also
// how a peer's newer-term bounce fences the shipper. Idempotent.
func (s *Shipper) Depose() {
	s.deposed.Store(true)
}

// SelfDemote renounces leadership from the inside: the primary's own
// WAL has wedged, so it can never again make an operation durable. The
// fence refuses from here on, shipping and heartbeats stop, and the
// standbys' failure detectors — which cannot see a dead disk behind a
// live NIC — see exactly what they were built to see: silence.
// Idempotent; safe from the log's wedge callback goroutine.
func (s *Shipper) SelfDemote() {
	s.demoted.Store(true)
}

// Demoted reports whether the shipper has renounced leadership over a
// wedged local WAL.
func (s *Shipper) Demoted() bool { return s.demoted.Load() }

// AddPeer re-bases a fresh (or returning, or formerly promoted-away)
// standby at dest through the snapshot path and adds it to the group.
// The re-base runs quiesced, so the new peer joins with no gap.
func (s *Shipper) AddPeer(dest cap.Port) error {
	p := &peer{dest: dest}
	return s.k.Resnapshot(func(snap []byte, next uint64) error {
		base := []wal.Record{{Seq: next - 1, Checkpoint: true, Data: snap}}
		if err := s.shipToPeer(p, Encode(base, true, s.o.Term), next, true); err != nil {
			return err
		}
		s.mu.Lock()
		s.peers = append(s.peers, p)
		s.stats.Rebases++
		s.mu.Unlock()
		return nil
	})
}

// DropPeer removes the peer at dest from the group (its machine is
// being restarted with a fresh receiver port, or retired for good).
func (s *Shipper) DropPeer(dest cap.Port) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range s.peers {
		if p.dest == dest {
			s.peers = append(s.peers[:i], s.peers[i+1:]...)
			return
		}
	}
}

// sink is the log's commit sink: called from the single committer
// goroutine, after the local sync, before the batch's tickets complete.
// It ships to every live peer in parallel and returns when all have
// durably acknowledged (or spent their attempt budgets): synchronous
// replication to the whole live group, so even the slowest standby
// holds every acknowledged op.
func (s *Shipper) sink(recs []wal.Record) {
	s.mu.Lock()
	// A sealed or demoted primary stops shipping on purpose, not just
	// acknowledging: its data frames refresh the standbys' last-contact
	// clocks, and a primary that can never serve again yet keeps the
	// failure detectors quiet would block the election that is the
	// group's only way forward.
	if s.stopped || s.deposed.Load() || s.demoted.Load() || s.sealed.Load() {
		s.stats.Dropped += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	peers := append([]*peer(nil), s.peers...)
	s.stats.Batches++
	s.stats.Records += uint64(len(recs))
	s.mu.Unlock()

	live := make([]*peer, 0, len(peers))
	for _, p := range peers {
		if !p.lost.Load() {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		// Group mode: a batch that reaches NOBODY trivially missed its
		// majority and must seal like any other — skipping the check
		// here would let the primary acknowledge unreplicated ops in
		// the window before its lease lapses, and a subsequent election
		// would silently drop them.
		if s.o.LeaseTerm > 0 {
			s.sealed.Store(true)
		}
		s.mu.Lock()
		s.stats.Dropped += uint64(len(recs))
		s.mu.Unlock()
		return
	}
	frames := Encode(recs, false, s.o.Term)
	end := recs[len(recs)-1].Seq + 1
	acks := int32(0)
	if len(live) == 1 {
		if s.shipToPeer(live[0], frames, end, false) == nil {
			acks = 1
		}
	} else {
		var wg sync.WaitGroup
		for _, p := range live {
			wg.Add(1)
			go func(p *peer) {
				defer wg.Done()
				if s.shipToPeer(p, frames, end, false) == nil {
					atomic.AddInt32(&acks, 1)
				}
			}(p)
		}
		wg.Wait()
	}
	// Majority seal, the quorum half of the split-brain guard: if this
	// batch did not reach a majority of the CONFIGURED group, a
	// successor could be elected among machines that never saw it —
	// so neither this batch nor anything after it may be acknowledged.
	// Sticky on purpose: the fence refuses from here on, clients fail
	// over, and refusing an op that actually survived is safe (clients
	// retry; the suites tolerate duplicate side effects), while
	// acknowledging one that didn't is the one unforgivable lie.
	if s.o.LeaseTerm > 0 && int(acks)+1 < s.majority() {
		s.sealed.Store(true)
	}
}

// shipToPeer delivers one encoded batch to one peer, serialized with
// that peer's other traffic.
func (s *Shipper) shipToPeer(p *peer, frames []Frame, batchEnd uint64, rebase bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, frame := range frames {
		if err := s.sendFrame(p, frame, batchEnd, rebase); err != nil {
			return err
		}
	}
	return nil
}

// sendFrame delivers one frame to one peer (caller holds p.mu). A
// sequence-gap rejection is healed by re-shipping everything from the
// receiver's high water through the end of the batch out of the
// primary's own log (every batch record is committed before the sink
// runs, so the log has them all); transport failures are retried until
// the attempt budget is spent, and then the peer is marked lost.
func (s *Shipper) sendFrame(p *peer, frame Frame, batchEnd uint64, rebase bool) error {
	for {
		if s.ctx.Err() != nil {
			s.mu.Lock()
			s.stats.Dropped++
			s.mu.Unlock()
			return s.ctx.Err()
		}
		s.mu.Lock()
		s.stats.Frames++
		s.mu.Unlock()
		// s.ctx carries only cancellation (Stop); the per-attempt
		// timeout rides the call option, so no deadline context is
		// built on this hot path. sent is taken BEFORE the call: a
		// grant is only as fresh as the moment the renewal left.
		sent := s.o.Now()
		rep, err := s.c.Trans(s.ctx, p.dest, rpc.Request{Op: OpShip, Data: frame.Payload}, s.opts...)
		if err == nil {
			switch rep.Status {
			case rpc.StatusOK:
				p.fails = 0
				if high, aerr := ParseAck(rep.Data); aerr == nil {
					s.peerAcked(p, high)
				}
				p.grant.Store(sent.UnixNano())
				return nil
			case rpc.StatusStale:
				s.Depose()
				return ErrDeposed
			case rpc.StatusConflict:
				// A rebase frame can never gap; for the in-sequence
				// stream, back-fill from the receiver's high water. If
				// the catch-up covers the whole batch, this frame (and
				// the batch's remaining frames, as duplicates) is done.
				high, aerr := ParseAck(rep.Data)
				if aerr == nil && !rebase {
					if high+1 < batchEnd {
						if cerr := s.catchUp(p, high+1, batchEnd); cerr != nil {
							return cerr
						}
					}
					if p.acked.Load() >= batchEnd-1 {
						p.grant.Store(sent.UnixNano())
						return nil
					}
				}
			}
		}
		p.fails++
		s.mu.Lock()
		s.stats.Retries++
		s.mu.Unlock()
		if p.fails >= s.o.Attempts {
			p.lost.Store(true)
			return ErrBackupLost
		}
		select {
		case <-s.ctx.Done():
		case <-time.After(s.o.Backoff):
		}
	}
}

// peerAcked records a durable acknowledgement from one peer.
func (s *Shipper) peerAcked(p *peer, high uint64) {
	for {
		cur := p.acked.Load()
		if high <= cur || p.acked.CompareAndSwap(cur, high) {
			break
		}
	}
	s.mu.Lock()
	if high > s.stats.Acked {
		s.stats.Acked = high
	}
	s.mu.Unlock()
}

// catchUp re-ships the committed records in [from, to) out of the
// primary's own log to one peer. ErrSeqTruncated cannot normally happen
// — the receiver's high water only trails records it was already
// shipped, which a checkpoint cannot outrun because checkpoints ship
// through the same ordered stream — so it is treated as a lost backup.
func (s *Shipper) catchUp(p *peer, from, to uint64) error {
	batch := make([]wal.Record, 0, 64)
	size := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		s.mu.Lock()
		s.stats.CatchUp += uint64(len(batch))
		s.mu.Unlock()
		for _, frame := range Encode(batch, false, s.o.Term) {
			if err := s.sendCatchUpFrame(p, frame.Payload); err != nil {
				return err
			}
		}
		batch, size = batch[:0], 0
		return nil
	}
	err := s.k.ReadFrom(from, func(r wal.Record) error {
		if r.Seq >= to {
			return errStopScan
		}
		// ReadFrom's record data aliases its scan buffer; copy for the
		// frames we batch up.
		r.Data = append([]byte(nil), r.Data...)
		batch = append(batch, r)
		size += len(r.Data)
		if size >= MaxShipBytes {
			return flush()
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return err
	}
	return flush()
}

var errStopScan = errors.New("repl: scan complete")

// sendCatchUpFrame is sendFrame without gap-healing (catch-up must not
// recurse); a conflict here means the receiver advanced meanwhile,
// which the outer retry resolves.
func (s *Shipper) sendCatchUpFrame(p *peer, frame []byte) error {
	for {
		if s.ctx.Err() != nil {
			return s.ctx.Err()
		}
		s.mu.Lock()
		s.stats.Frames++
		s.mu.Unlock()
		sent := s.o.Now()
		rep, err := s.c.Trans(s.ctx, p.dest, rpc.Request{Op: OpShip, Data: frame}, s.opts...)
		if err == nil && rep.Status == rpc.StatusStale {
			s.Depose()
			return ErrDeposed
		}
		if err == nil && (rep.Status == rpc.StatusOK || rep.Status == rpc.StatusConflict) {
			if high, aerr := ParseAck(rep.Data); aerr == nil {
				s.peerAcked(p, high)
			}
			if rep.Status == rpc.StatusOK {
				p.grant.Store(sent.UnixNano())
			}
			p.fails = 0
			return nil
		}
		p.fails++
		s.mu.Lock()
		s.stats.Retries++
		s.mu.Unlock()
		if p.fails >= s.o.Attempts {
			p.lost.Store(true)
			return ErrBackupLost
		}
		select {
		case <-s.ctx.Done():
		case <-time.After(s.o.Backoff):
		}
	}
}

// heartbeatLoop renews the group lease while the commit stream is
// idle: one bare frame per live peer per LeaseTerm/3, single attempt —
// a missed heartbeat just waits for the next tick, and three fit in a
// term, so one loss never lapses the lease.
func (s *Shipper) heartbeatLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.o.LeaseTerm / 3)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-tick.C:
		}
		// Deliberate silence on any terminal state — deposed, sealed, or
		// self-demoted. Sealing and demotion are sticky: this primary
		// will never acknowledge again, so continuing to heartbeat would
		// only hold the standbys' detectors open forever and wedge the
		// whole group behind a leader that cannot lead. Going dark is
		// what lets the existing election machinery recover: contact
		// goes stale, detectors fire, the highest standby takes over.
		// (This is also the liveness half of the one-way-partition
		// story: a primary that can send but not hear seals under load,
		// then stops transmitting, so the standbys that were hearing
		// its one-way traffic finally see the silence they need.)
		if s.deposed.Load() || s.demoted.Load() || s.sealed.Load() {
			return
		}
		hb := EncodeHeartbeat(s.o.Term)
		s.mu.Lock()
		peers := append([]*peer(nil), s.peers...)
		s.mu.Unlock()
		for _, p := range peers {
			// Lost peers are heartbeated too: a peer that missed a few
			// frames is LOST to the data stream (reprobeLoop re-bases
			// it) but very much alive to the lease — if the primary went
			// silent toward it, its failure detector would fire and
			// elect a second primary out of a transient loss. The
			// heartbeat tells it "your primary lives"; the re-base
			// catches its data up separately.
			if !p.mu.TryLock() {
				// The sink (or a catch-up) is mid-frame to this peer;
				// its ack will renew the grant better than we can.
				continue
			}
			s.mu.Lock()
			s.stats.Heartbeats++
			s.stats.Frames++
			s.mu.Unlock()
			s.wg.Add(1)
			go func(p *peer) {
				// One goroutine per peer per tick: a dead peer burns its
				// timeout budget alone instead of stalling the loop —
				// sequentially, one corpse could hold the next peer's
				// heartbeat past the detector gap and cascade elections
				// through a healthy group. Pile-up is impossible: the
				// peer lock is held until this send resolves, so next
				// tick's TryLock skips the peer.
				defer s.wg.Done()
				defer p.mu.Unlock()
				sent := s.o.Now()
				rep, err := s.c.Trans(s.ctx, p.dest, rpc.Request{Op: OpShip, Data: hb}, s.hbOpts...)
				if err != nil {
					return
				}
				switch rep.Status {
				case rpc.StatusOK:
					if high, aerr := ParseAck(rep.Data); aerr == nil {
						s.peerAcked(p, high)
					}
					p.grant.Store(sent.UnixNano())
				case rpc.StatusStale:
					s.Depose()
				}
			}(p)
		}
	}
}

// reprobeLoop is the slow path back from the dead: every Reprobe it
// pings each lost peer's receiver with an OpSeq query (cheap, no
// records), and a peer that answers is re-based via the snapshot path
// and resumes as a live member of the group.
func (s *Shipper) reprobeLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.o.Reprobe)
	defer tick.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-tick.C:
		}
		// Same terminal-state silence as the heartbeat loop: a re-based
		// peer would read as contact, and a sealed/demoted primary must
		// not touch the group again.
		if s.deposed.Load() || s.demoted.Load() || s.sealed.Load() {
			return
		}
		s.mu.Lock()
		peers := append([]*peer(nil), s.peers...)
		s.mu.Unlock()
		for _, p := range peers {
			if !p.lost.Load() || s.ctx.Err() != nil {
				continue
			}
			rep, err := s.c.Trans(s.ctx, p.dest, rpc.Request{Op: OpSeq}, s.opts...)
			if err != nil || rep.Status != rpc.StatusOK {
				continue
			}
			// Alive again. Re-base it: its log may have holes we
			// shipped around while it was lost, so the only safe
			// resumption point is a fresh snapshot.
			if err := s.rebasePeer(p); err != nil {
				continue // still flaky; next tick tries again
			}
		}
	}
}

// rebasePeer ships a returning peer a fresh base snapshot (quiesced, so
// it rejoins the stream with no gap) and marks it live.
func (s *Shipper) rebasePeer(p *peer) error {
	return s.k.Resnapshot(func(snap []byte, next uint64) error {
		p.mu.Lock()
		p.fails = 0
		p.mu.Unlock()
		base := []wal.Record{{Seq: next - 1, Checkpoint: true, Data: snap}}
		if err := s.shipToPeer(p, Encode(base, true, s.o.Term), next, true); err != nil {
			return err
		}
		p.lost.Store(false)
		s.mu.Lock()
		s.stats.Rebases++
		s.mu.Unlock()
		return nil
	})
}
