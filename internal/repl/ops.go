package repl

import "amoeba/internal/obs"

// The wire opcodes name themselves in the shared obs table — the one
// source metric labels and access-log dumps read, so a label can never
// drift from the opcode the const block defines.
func init() {
	obs.RegisterOps(map[uint16]string{
		OpShip:    "repl.ship",
		OpSeq:     "repl.seq",
		OpMigrate: "repl.migrate",
	})
}
