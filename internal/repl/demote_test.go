package repl

import (
	"errors"
	"testing"

	"amoeba/internal/rpc"
)

// TestFenceErrorTaxonomy pins the transient/permanent split the RPC
// layer routes on: permanent authority loss wraps rpc.ErrStaleAuthority
// (servers answer StatusStale, clients evict the route and re-locate at
// once), while a lapsed lease stays a plain overload (the same primary
// may be re-granted within a term, so clients back off in place).
func TestFenceErrorTaxonomy(t *testing.T) {
	for _, e := range []error{ErrSealed, ErrDeposed, ErrSelfDemoted} {
		if !errors.Is(e, rpc.ErrStaleAuthority) {
			t.Errorf("%v should wrap rpc.ErrStaleAuthority", e)
		}
	}
	if errors.Is(ErrLeaseLapsed, rpc.ErrStaleAuthority) {
		t.Errorf("ErrLeaseLapsed must NOT wrap rpc.ErrStaleAuthority: a lapsed lease is transient")
	}
}

// TestFencePrecedence drives a bare shipper through its terminal
// states: the fence must name the most specific condition, demotion
// (our own disk is gone) over deposition (someone else won) over the
// seal (a batch missed majority), and every terminal state is sticky
// and idempotent.
func TestFencePrecedence(t *testing.T) {
	s := &Shipper{}
	if err := s.Fence(); err != nil {
		t.Fatalf("fresh shipper fence = %v, want nil", err)
	}
	s.sealed.Store(true)
	if err := s.Fence(); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed fence = %v, want ErrSealed", err)
	}
	s.Depose()
	s.Depose() // idempotent
	if err := s.Fence(); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed fence = %v, want ErrDeposed", err)
	}
	if !s.Stats().Deposed {
		t.Fatal("Stats().Deposed = false after Depose")
	}
	s.SelfDemote()
	s.SelfDemote() // idempotent
	if err := s.Fence(); !errors.Is(err, ErrSelfDemoted) {
		t.Fatalf("demoted fence = %v, want ErrSelfDemoted", err)
	}
	if !s.Demoted() || !s.Stats().Demoted {
		t.Fatal("Demoted() or Stats().Demoted false after SelfDemote")
	}
}
