package locate

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
)

// countLocates attaches a wiretap and counts LOCATE broadcast frames
// (fbox frame kind 0x02 in the first payload byte) until the returned
// stop function runs.
func countLocates(t *testing.T, r *rig) (count *atomic.Int64, stop func()) {
	t.Helper()
	tap, err := r.net.Tap()
	if err != nil {
		t.Fatal(err)
	}
	count = new(atomic.Int64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for f := range tap.Recv() {
			if len(f.Payload) > 0 && f.Payload[0] == 0x02 {
				count.Add(1)
			}
			f.Release()
		}
	}()
	return count, func() {
		tap.Close()
		<-done
	}
}

// TestSingleFlightBroadcast: N concurrent goroutines failing over to a
// (re)appeared server must put ONE LOCATE round on the wire, not N —
// the wiretap counts the actual broadcast frames.
func TestSingleFlightBroadcast(t *testing.T) {
	// Real latency on the wire: the leader's LOCATE round takes long
	// enough that the other 31 lookups genuinely coalesce behind it.
	n := amnet.NewSimNet(amnet.SimConfig{Latency: 5 * time.Millisecond})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	r := &rig{net: n, client: attach(), server: attach()}
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(2)))
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	locates, stop := countLocates(t, r)

	res := New(r.client, fastCfg())
	const clients = 32
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			at, err := res.Lookup(context.Background(), p)
			if err != nil || at != r.server.Machine() {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	stop()
	if failed.Load() != 0 {
		t.Fatalf("%d lookups failed", failed.Load())
	}
	if n := locates.Load(); n != 1 {
		t.Fatalf("%d LOCATE frames on the wire for %d concurrent lookups, want 1", n, clients)
	}
	s := res.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses %d, want 1 (leader only)", s.Misses)
	}
	// Every non-leader either coalesced behind the flight or (having
	// started after it resolved) hit the cache; with a 10ms round trip
	// at least some must have coalesced.
	if s.Coalesced+s.Hits != clients-1 {
		t.Fatalf("coalesced %d + hits %d != %d", s.Coalesced, s.Hits, clients-1)
	}
	if s.Coalesced == 0 {
		t.Fatal("no lookup coalesced behind the in-flight broadcast")
	}
}

// TestSingleFlightWaiterCancel: a waiter's own context cancels its
// wait without disturbing the leader's broadcast.
func TestSingleFlightWaiterCancel(t *testing.T) {
	r := newRig(t)
	// No server listens: the leader's rounds will run their full
	// course; the cancelled waiter must return early anyway.
	p := cap.Port(0x123456)
	res := New(r.client, Config{Timeout: 300 * time.Millisecond, Attempts: 2})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := res.Lookup(context.Background(), p)
		leaderDone <- err
	}()
	// Wait until the leader's flight is registered.
	for i := 0; i < 100; i++ {
		res.mu.Lock()
		inFlight := res.flights[p] != nil
		res.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := res.Lookup(ctx, p); err != context.DeadlineExceeded {
		t.Fatalf("waiter got %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("cancelled waiter was held for the leader's full timeout")
	}
	if err := <-leaderDone; err == nil {
		t.Fatal("leader found a server that does not exist")
	}
}

// TestSingleFlightLeaderCancelHandsOff: when the leader aborts on its
// own cancelled context, a live waiter retries as the new leader
// rather than inheriting the cancellation.
func TestSingleFlightLeaderCancelHandsOff(t *testing.T) {
	r := newRig(t)
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(3)))
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)

	// Partition the server first so the leader's broadcast hangs.
	r.net.Partition(r.client.Machine(), r.server.Machine())
	res := New(r.client, Config{Timeout: 50 * time.Millisecond, Attempts: 100})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := res.Lookup(leaderCtx, p)
		leaderDone <- err
	}()
	for i := 0; i < 100; i++ {
		res.mu.Lock()
		inFlight := res.flights[p] != nil
		res.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	waiterDone := make(chan error, 1)
	var at int64
	go func() {
		got, err := res.Lookup(context.Background(), p)
		at = int64(got)
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	// Heal, then abort the leader: the waiter must take over and find
	// the server.
	r.net.Heal(r.client.Machine(), r.server.Machine())
	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Fatal("cancelled leader reported success")
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter-turned-leader failed: %v", err)
	}
	if at != int64(r.server.Machine()) {
		t.Fatalf("waiter located %v, want %v", at, r.server.Machine())
	}
}
