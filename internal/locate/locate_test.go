package locate

import (
	"context"
	"errors"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
)

type rig struct {
	net    *amnet.SimNet
	client *fbox.FBox
	server *fbox.FBox
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := amnet.NewSimNet(amnet.SimConfig{})
	t.Cleanup(func() { n.Close() })
	attach := func() *fbox.FBox {
		nic, err := n.Attach()
		if err != nil {
			t.Fatal(err)
		}
		fb := fbox.New(nic, nil)
		t.Cleanup(func() { fb.Close() })
		return fb
	}
	return &rig{net: n, client: attach(), server: attach()}
}

func fastCfg() Config {
	return Config{Timeout: 100 * time.Millisecond, Attempts: 2}
}

func TestLookupViaBroadcast(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(1)))
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	res := New(r.client, fastCfg())
	at, err := res.Lookup(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if at != r.server.Machine() {
		t.Fatalf("located %v, want %v", at, r.server.Machine())
	}
	s := res.Stats()
	if s.Misses != 1 || s.Broadcasts == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLookupCachesResult(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(2)))
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	res := New(r.client, fastCfg())
	if _, err := res.Lookup(ctx, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := res.Lookup(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	s := res.Stats()
	if s.Hits != 5 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 5 hits 1 miss", s)
	}
	if res.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d", res.CacheLen())
	}
}

func TestLookupNotFound(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	res := New(r.client, fastCfg())
	start := time.Now()
	_, err := res.Lookup(ctx, cap.Port(0xdead))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("gave up after %v; should have retried", elapsed)
	}
	if s := res.Stats(); s.Failures != 1 || s.Broadcasts != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInvalidateForcesRebroadcast(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(3)))
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	res := New(r.client, fastCfg())
	if _, err := res.Lookup(ctx, p); err != nil {
		t.Fatal(err)
	}
	res.Invalidate(p)
	if _, err := res.Lookup(ctx, p); err != nil {
		t.Fatal(err)
	}
	if s := res.Stats(); s.Misses != 2 {
		t.Fatalf("stats %+v, want 2 misses", s)
	}
}

// TestEvictSparesRefreshedEntry: Evict only drops the entry if it
// still names the suspect machine — a transaction that timed out
// against a dead machine must not clobber the route a concurrent
// lookup already refreshed to the server's new (promoted) home.
func TestEvictSparesRefreshedEntry(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	res := New(r.client, fastCfg())

	dead := r.server.Machine() + 100 // a machine id nobody answers for
	res.Insert(cap.Port(9), dead)
	res.Evict(cap.Port(9), dead)
	if res.CacheLen() != 0 {
		t.Fatal("matching eviction kept the entry")
	}

	// The entry was refreshed to the new machine meanwhile: an eviction
	// blaming the OLD machine must leave it alone.
	res.Insert(cap.Port(9), r.server.Machine())
	res.Evict(cap.Port(9), dead)
	at, err := res.Lookup(ctx, cap.Port(9))
	if err != nil {
		t.Fatal(err)
	}
	if at != r.server.Machine() {
		t.Fatalf("at = %v", at)
	}
	if s := res.Stats(); s.Hits != 1 || s.Broadcasts != 0 {
		t.Fatalf("refreshed entry was evicted: %+v", s)
	}
}

func TestInsertSeedsCache(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	res := New(r.client, fastCfg())
	res.Insert(cap.Port(7), r.server.Machine())
	at, err := res.Lookup(ctx, cap.Port(7))
	if err != nil {
		t.Fatal(err)
	}
	if at != r.server.Machine() {
		t.Fatalf("at = %v", at)
	}
	if s := res.Stats(); s.Hits != 1 || s.Broadcasts != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	g := cap.Port(crypto.Rand48(crypto.NewSeededSource(4)))
	if _, err := r.server.Get(g, true); err != nil {
		t.Fatal(err)
	}
	p := r.server.F(g)
	cfg := fastCfg()
	cfg.TTL = 10 * time.Millisecond
	res := New(r.client, cfg)
	if _, err := res.Lookup(ctx, p); err != nil {
		t.Fatal(err)
	}
	// Warp the clock past the TTL.
	res.now = func() time.Time { return time.Now().Add(time.Hour) }
	if _, err := res.Lookup(ctx, p); err != nil {
		t.Fatal(err)
	}
	if s := res.Stats(); s.Misses != 2 {
		t.Fatalf("stats %+v, want 2 misses after TTL expiry", s)
	}
}

func TestNegativeTTLNeverExpires(t *testing.T) {
	ctx := context.Background()
	r := newRig(t)
	cfg := fastCfg()
	cfg.TTL = -1
	res := New(r.client, cfg)
	res.Insert(cap.Port(9), r.server.Machine())
	res.now = func() time.Time { return time.Now().Add(1000 * time.Hour) }
	if _, err := res.Lookup(ctx, cap.Port(9)); err != nil {
		t.Fatal(err)
	}
	if s := res.Stats(); s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Timeout <= 0 || c.Attempts <= 0 || c.TTL <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
