package locate

import (
	"context"
	"testing"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/shard"
)

// shardRig: a resolver wired to an atlas holding a 3-shard map for one
// port. Objects 0,1,2 hash to shards 0,1,2.
func shardRig(t *testing.T) (*Resolver, *shard.Atlas, cap.Port, []amnet.MachineID) {
	t.Helper()
	r := newRig(t)
	atlas := shard.NewAtlas()
	p := cap.Port(0xBEEF)
	machines := []amnet.MachineID{101, 102, 103}
	atlas.Register(p, shard.NewMap(machines))
	cfg := fastCfg()
	cfg.Atlas = atlas
	return New(r.client, cfg), atlas, p, machines
}

func TestLookupObjectRoutesByShard(t *testing.T) {
	ctx := context.Background()
	res, _, p, machines := shardRig(t)
	for obj := uint32(0); obj < 6; obj++ {
		at, err := res.LookupObject(ctx, p, obj, true)
		if err != nil {
			t.Fatal(err)
		}
		if want := machines[obj%3]; at != want {
			t.Fatalf("object %d routed to %v, want %v", obj, at, want)
		}
	}
	// 3 route-cache misses (one per shard), 3 hits on the second pass.
	if s := res.Stats(); s.Misses != 3 || s.Hits != 3 || s.Broadcasts != 0 {
		t.Fatalf("stats %+v, want 3 misses / 3 hits / 0 broadcasts", s)
	}
}

func TestLookupObjectRoundRobinWithoutObject(t *testing.T) {
	ctx := context.Background()
	res, _, p, _ := shardRig(t)
	seen := make(map[amnet.MachineID]int)
	for i := 0; i < 9; i++ {
		at, err := res.LookupObject(ctx, p, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		seen[at]++
	}
	if len(seen) != 3 {
		t.Fatalf("objectless requests hit %d machines, want all 3: %v", len(seen), seen)
	}
	for at, n := range seen {
		if n != 3 {
			t.Fatalf("machine %v got %d requests, want an even 3: %v", at, n, seen)
		}
	}
}

// TestShardedEvictSparesSiblingShards is the regression test for the
// one-machine-per-port eviction bug: a failing call to shard 2 must
// drop shard 2's cached route and ONLY shard 2's — before the fix the
// whole port's routes went, and every client re-resolved all shards
// because one was sick. The resolver's hit/miss counters are the tap:
// a clobbered sibling shows up as an extra miss.
func TestShardedEvictSparesSiblingShards(t *testing.T) {
	ctx := context.Background()
	res, _, p, machines := shardRig(t)
	for obj := uint32(0); obj < 3; obj++ {
		if _, err := res.LookupObject(ctx, p, obj, true); err != nil {
			t.Fatal(err)
		}
	}
	before := res.Stats()
	if before.Misses != 3 {
		t.Fatalf("warmup stats %+v, want 3 misses", before)
	}

	res.Evict(p, machines[2])

	// Shards 0 and 1 still answer from cache…
	for obj := uint32(0); obj < 2; obj++ {
		if _, err := res.LookupObject(ctx, p, obj, true); err != nil {
			t.Fatal(err)
		}
	}
	s := res.Stats()
	if s.Hits != before.Hits+2 || s.Misses != before.Misses {
		t.Fatalf("sibling routes were clobbered: %+v (before %+v)", s, before)
	}
	// …and only shard 2 re-resolves.
	if _, err := res.LookupObject(ctx, p, 2, true); err != nil {
		t.Fatal(err)
	}
	if s := res.Stats(); s.Misses != before.Misses+1 {
		t.Fatalf("evicted shard did not re-resolve: %+v", s)
	}
	// An eviction blaming a machine that serves no shard touches nothing.
	res.Evict(p, amnet.MachineID(999))
	if _, err := res.LookupObject(ctx, p, 1, true); err != nil {
		t.Fatal(err)
	}
	if s2 := res.Stats(); s2.Misses != before.Misses+1 {
		t.Fatalf("unrelated eviction clobbered a route: %+v", s2)
	}
}

// TestRefreshReroutesMigratedObject: after a migration bumps the map,
// Refresh (driven by a StatusWrongShard reply) makes the resolver
// re-read the atlas and route the object to its new home — while the
// sibling shard routes stay cached.
func TestRefreshReroutesMigratedObject(t *testing.T) {
	ctx := context.Background()
	res, atlas, p, machines := shardRig(t)
	if at, err := res.LookupObject(ctx, p, 5, true); err != nil || at != machines[2] {
		t.Fatalf("at=%v err=%v, want shard 2 (%v)", at, err, machines[2])
	}

	// Object 5 migrates to shard 0; the resolver's cached map is stale.
	atlas.Update(p, func(m *shard.Map) *shard.Map { return m.WithOverride(5, 0) })
	if at, _ := res.LookupObject(ctx, p, 5, true); at != machines[2] {
		t.Fatalf("stale map should still route to shard 2, got %v", at)
	}

	// The server answered WrongShard with its generation; Refresh drops
	// the stale map and the retry routes to the new home.
	res.Refresh(p, res.MapGen(p))
	at, err := res.LookupObject(ctx, p, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if at != machines[0] {
		t.Fatalf("refreshed lookup routed to %v, want shard 0 (%v)", at, machines[0])
	}
	// A Refresh against an OLDER generation than the cached map is a
	// no-op (the reply was from a server behind this client's map).
	res.Refresh(p, 1)
	if at, _ := res.LookupObject(ctx, p, 5, true); at != machines[0] {
		t.Fatalf("stale refresh dropped a fresh map; routed to %v", at)
	}
}
