// Package locate resolves Amoeba ports to machines: the paper's
// "cache of (port, machine-number) pairs. If a port is not in the
// cache, it can be found by broadcasting a LOCATE message" (§2.2).
//
// The cache learns from successful lookups and is invalidated by the
// RPC layer when a cached machine stops answering (a server may have
// migrated or crashed; the next request re-broadcasts).
package locate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/fbox"
	"amoeba/internal/shard"
)

// ErrNotFound is returned when no machine answers a LOCATE within the
// configured attempts.
var ErrNotFound = errors.New("locate: port not located")

// Config tunes the resolver. The zero value gets sensible defaults.
type Config struct {
	// Timeout bounds each broadcast round (default 250ms).
	Timeout time.Duration
	// Attempts is the number of broadcast rounds (default 3).
	Attempts int
	// TTL bounds how long a cache entry is trusted without
	// reconfirmation (default 1 minute; 0 keeps entries forever).
	TTL time.Duration
	// Atlas, when set, lets the resolver route (port, object) pairs on
	// sharded ports: the object's home shard comes from the port's
	// shard map, cached here with the same TTL so stale maps self-heal
	// through StatusWrongShard instead of broadcasts.
	Atlas *shard.Atlas
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.TTL == 0 {
		c.TTL = time.Minute
	}
	return c
}

type entry struct {
	at      amnet.MachineID
	learned time.Time
}

// flight is one in-progress broadcast lookup; concurrent Lookups for
// the same port wait on it instead of broadcasting themselves.
type flight struct {
	done chan struct{}
	at   amnet.MachineID
	err  error
}

// Resolver locates ports through an F-box and caches the results.
// It is safe for concurrent use.
type Resolver struct {
	fb  *fbox.FBox
	cfg Config
	now func() time.Time // test hook

	mu      sync.Mutex
	cache   map[cap.Port]entry
	flights map[cap.Port]*flight
	maps    map[cap.Port]mapEntry // cached shard map per sharded port
	shards  map[portShard]entry   // cached route per (port, shard)
	rr      uint64                // round-robin cursor for objectless requests
	stats   Stats
}

// portShard keys the per-shard route cache: each shard of a port has
// its own entry, so evicting one shard's dead route cannot clobber its
// siblings' live ones.
type portShard struct {
	p   cap.Port
	idx int
}

// mapEntry is a cached shard map plus when it was learned.
type mapEntry struct {
	m       *shard.Map
	learned time.Time
}

// Stats counts resolver activity for experiment E12.
type Stats struct {
	Hits       uint64 // answered from cache
	Misses     uint64 // required broadcasting
	Coalesced  uint64 // waited on another lookup's broadcast (single-flight)
	Broadcasts uint64 // LOCATE rounds sent
	Failures   uint64 // lookups that exhausted all attempts
}

// New builds a resolver over fb.
func New(fb *fbox.FBox, cfg Config) *Resolver {
	return &Resolver{
		fb:      fb,
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		cache:   make(map[cap.Port]entry),
		flights: make(map[cap.Port]*flight),
		maps:    make(map[cap.Port]mapEntry),
		shards:  make(map[portShard]entry),
	}
}

// Lookup returns the machine serving put-port p, consulting the cache
// first and broadcasting LOCATE rounds on a miss. The broadcast is
// single-flight per port: when N clients fail over to a restarted
// server at once, one LOCATE round goes on the wire and the other N-1
// lookups ride its answer. Cancelling the context aborts the broadcast
// (or the wait on another's broadcast) and returns ctx.Err().
func (r *Resolver) Lookup(ctx context.Context, p cap.Port) (amnet.MachineID, error) {
	for {
		r.mu.Lock()
		if e, ok := r.cache[p]; ok && (r.cfg.TTL < 0 || r.now().Sub(e.learned) < r.cfg.TTL) {
			r.stats.Hits++
			r.mu.Unlock()
			return e.at, nil
		}
		if f := r.flights[p]; f != nil {
			r.stats.Coalesced++
			r.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			if f.err == nil {
				return f.at, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				continue // the leader gave up for its own reasons; retry
			}
			return 0, f.err
		}
		r.stats.Misses++
		f := &flight{done: make(chan struct{})}
		r.flights[p] = f
		r.mu.Unlock()

		f.at, f.err = r.broadcastRounds(ctx, p)
		r.mu.Lock()
		delete(r.flights, p)
		if f.err == nil {
			r.cache[p] = entry{at: f.at, learned: r.now()}
		} else if errors.Is(f.err, ErrNotFound) {
			r.stats.Failures++
		}
		r.mu.Unlock()
		close(f.done)
		return f.at, f.err
	}
}

// LookupObject resolves (port, object) → machine. On a sharded port
// (one with a map in the atlas) the object's home shard is computed
// from the cached map and the per-shard route returned — no broadcast:
// every shard advertises the same put-port, so a LOCATE answer would
// be ambiguous; the atlas plays the directory a wire deployment would
// query. Requests that carry no capability (hasObj false — object
// creation) are spread round-robin: every shard mints numbers its own
// ownership filter accepts, so the returned capability routes
// correctly no matter which shard minted it. Unsharded ports fall
// through to the plain broadcast Lookup.
func (r *Resolver) LookupObject(ctx context.Context, p cap.Port, obj uint32, hasObj bool) (amnet.MachineID, error) {
	if r.cfg.Atlas == nil {
		return r.Lookup(ctx, p)
	}
	now := r.now()
	r.mu.Lock()
	e, ok := r.maps[p]
	m := e.m
	if !ok || (r.cfg.TTL >= 0 && now.Sub(e.learned) >= r.cfg.TTL) {
		m = r.cfg.Atlas.Lookup(p)
		if m != nil {
			r.maps[p] = mapEntry{m: m, learned: now}
		} else if ok {
			delete(r.maps, p)
		}
	}
	if m == nil {
		r.mu.Unlock()
		return r.Lookup(ctx, p)
	}
	var idx int
	if hasObj {
		idx = m.Home(obj)
	} else {
		idx = int(r.rr % uint64(m.N))
		r.rr++
	}
	key := portShard{p: p, idx: idx}
	if se, ok := r.shards[key]; ok && (r.cfg.TTL < 0 || now.Sub(se.learned) < r.cfg.TTL) {
		r.stats.Hits++
		r.mu.Unlock()
		return se.at, nil
	}
	r.stats.Misses++
	at := m.Machines[idx]
	r.shards[key] = entry{at: at, learned: now}
	r.mu.Unlock()
	return at, nil
}

// Refresh drops p's cached shard map when it is no newer than gen —
// the client calls it with the generation a StatusWrongShard reply
// carried, so the retry recomputes the object's home from the current
// map. Cached per-shard routes survive: the object→shard assignment
// was stale, not the shard addresses.
func (r *Resolver) Refresh(p cap.Port, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.maps[p]; ok && (gen == 0 || e.m.Gen <= gen) {
		delete(r.maps, p)
	}
}

// MapGen returns the generation of p's cached shard map (0 when none
// is cached).
func (r *Resolver) MapGen(p cap.Port) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.maps[p]; ok {
		return e.m.Gen
	}
	return 0
}

// broadcastRounds runs the configured number of LOCATE rounds.
func (r *Resolver) broadcastRounds(ctx context.Context, p cap.Port) (amnet.MachineID, error) {
	for attempt := 0; attempt < r.cfg.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		r.mu.Lock()
		r.stats.Broadcasts++
		r.mu.Unlock()
		at, err := r.broadcastOnce(ctx, p)
		if err == nil {
			return at, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return 0, err
		}
	}
	return 0, fmt.Errorf("%w: %v after %d attempts", ErrNotFound, p, r.cfg.Attempts)
}

func (r *Resolver) broadcastOnce(ctx context.Context, p cap.Port) (amnet.MachineID, error) {
	replies, cancel, err := r.fb.Locate(p)
	if err != nil {
		return 0, fmt.Errorf("locate: %w", err)
	}
	defer cancel()
	timer := time.NewTimer(r.cfg.Timeout)
	defer timer.Stop()
	select {
	case at := <-replies:
		return at, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-timer.C:
		return 0, ErrNotFound
	}
}

// Invalidate drops every cached route and map for p (the RPC layer
// calls this when a transaction to the cached machine times out).
func (r *Resolver) Invalidate(p cap.Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.cache, p)
	delete(r.maps, p)
	for k := range r.shards {
		if k.p == p {
			delete(r.shards, k)
		}
	}
}

// Evict drops p's cached routes that still name machine at — and ONLY
// those. Two properties matter:
//
// Failover-safe: a transaction that timed out against a dead machine
// must not clobber an entry a concurrent lookup already refreshed to
// the server's NEW home — during a promotion storm that race would
// send the whole client herd back to broadcast.
//
// Shard-aware: on a sharded port only the failing machine's shard
// routes go; the sibling shards' cached routes survive, so one sick
// shard cannot force the whole port back through the directory.
// (Before this fix Evict assumed one machine per port and a failing
// call to shard 2 clobbered shards 0/1 as collateral.)
func (r *Resolver) Evict(p cap.Port, at amnet.MachineID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.cache[p]; ok && e.at == at {
		delete(r.cache, p)
	}
	for k, e := range r.shards {
		if k.p == p && e.at == at {
			delete(r.shards, k)
		}
	}
	// If the failed machine appears in the cached map, the map's
	// address for that shard is stale too (mid-failover): drop the map
	// so the next lookup rereads the atlas, which the cluster updates
	// when a shard changes primary.
	if me, ok := r.maps[p]; ok {
		for _, mach := range me.m.Machines {
			if mach == at {
				delete(r.maps, p)
				break
			}
		}
	}
}

// Insert seeds the cache (used by static cluster configurations that
// know their topology, avoiding the initial broadcast).
func (r *Resolver) Insert(p cap.Port, at amnet.MachineID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[p] = entry{at: at, learned: r.now()}
}

// Stats returns a snapshot of the counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// CacheLen returns the number of cached ports.
func (r *Resolver) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
