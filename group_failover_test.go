// Replication-group chaos tests: boot the durable services as
// 3-replica groups (ClusterConfig.Replicas) and kill machines mid-soak
// WITHOUT ever calling Promote — the standbys' failure detectors elect
// the successor on their own. Zero acknowledged operations may be
// lost through any failover, killed machines rejoin as fresh standbys
// via Restart, and a double failure (kill the newly promoted primary
// too) still converges. See EXPERIMENTS.md E21.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
)

// groupCluster boots a cluster whose durable services are 3-replica
// groups under mild network chaos, with a short lease so failovers
// resolve in tens of milliseconds.
func groupCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:     seed,
		LossRate: 0.01,
		Latency:  50 * time.Microsecond,
		Jitter:   100 * time.Microsecond,
		// The production default: short enough for sub-second failovers,
		// long enough that the race detector's scheduler stalls rarely
		// counterfeit a 1.5-term silence and false-alarm a detector.
		Replicas:  3,
		LeaseTerm: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// waitForFailover blocks until the service identified by pick moves off
// machine old (the group elected a successor).
func waitForFailover(t *testing.T, cl *Cluster, old amnet.MachineID, pick func(Machines) amnet.MachineID) amnet.MachineID {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := pick(cl.Machines()); m != old {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-failover never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// killPrimary kills whichever machine CURRENTLY hosts the service
// identified by pick. Under extreme scheduler stalls a detector false
// alarm may legally move the crown between a read of Machines() and the
// Kill — the suite asserts safety across elections, not that detectors
// never misfire — so the read-and-kill retries as one unit.
func killPrimary(t *testing.T, cl *Cluster, pick func(Machines) amnet.MachineID) amnet.MachineID {
	t.Helper()
	for attempt := 0; ; attempt++ {
		m := pick(cl.Machines())
		err := cl.Kill(m)
		if err == nil {
			return m
		}
		if attempt >= 50 || !strings.Contains(err.Error(), "killable") {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosAutoFailoverDirsvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runAutoFailoverDirsvr(t, 0xE210_0000+uint64(i))
		})
	}
}

func runAutoFailoverDirsvr(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	const workers, perWorker = 4, 6
	subs := make([]Capability, workers*perWorker)
	enter := func(g, i int) {
		name := fmt.Sprintf("w%d-e%d", g, i)
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker/2; i++ {
				enter(g, i)
			}
		}(g)
	}
	wg.Wait()

	// Kill the primary. NOBODY calls Promote: the standbys' failure
	// detectors notice the silent lease and elect the highest-acked one
	// while the workers hammer straight through the outage.
	primary := killPrimary(t, cl, func(m Machines) amnet.MachineID { return m.Dirs })
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := perWorker / 2; i < perWorker; i++ {
				enter(g, i)
			}
		}(g)
	}
	waitForFailover(t, cl, primary, func(m Machines) amnet.MachineID { return m.Dirs })
	wg.Wait()

	// Every acknowledged entry survived the failover with its exact
	// capability.
	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after auto-failover, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			got, ok := listed[name]
			if !ok {
				t.Fatalf("acknowledged entry %q lost in the auto-failover", name)
			}
			if got != subs[g*perWorker+i] {
				t.Fatalf("entry %q failed over with a different capability", name)
			}
		}
	}

	// The killed machine rejoins as a fresh standby — Restart routes it
	// through the snapshot re-integration path, not the old exile.
	if err := cl.Restart(primary); err != nil {
		t.Fatalf("killed primary could not rejoin its group: %v", err)
	}
	cl.mu.Lock()
	standbys := len(cl.dirsGroup.standbys)
	term := cl.dirsGroup.term
	cl.mu.Unlock()
	// A detector false alarm can legally run an extra election whose
	// victim this test never restarts, so group wholeness is only
	// asserted on the clean single-election run.
	if term == 2 && standbys != 2 {
		t.Fatalf("group has %d standbys after re-integration, want 2", standbys)
	}
	if term < 2 {
		t.Fatalf("group term %d after a failover, want ≥ 2", term)
	}
	// And the re-formed group still takes writes.
	untilOK(t, "post-reintegration enter", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "rejoined", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})
}

func TestChaosAutoFailoverBanksvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runAutoFailoverBanksvr(t, 0xE210_B000+uint64(i))
		})
	}
}

func runAutoFailoverBanksvr(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	bank := cl.Bank()

	const accounts, grant = 6, 1000
	caps := make([]Capability, accounts)
	for i := range caps {
		untilOK(t, "create account", func(ctx context.Context) error {
			var err error
			caps[i], err = bank.CreateAccount(ctx, "dollar", grant)
			return err
		})
	}

	const workers, transfers = 4, 10
	var wg sync.WaitGroup
	work := func(g, lo int) {
		defer wg.Done()
		for i := lo; i < lo+transfers/2; i++ {
			from := caps[(g+i)%accounts]
			to := caps[(g+i+1)%accounts]
			untilOK(t, "transfer", func(ctx context.Context) error {
				err := bank.Transfer(ctx, from, to, "dollar", 1)
				if err != nil && strings.Contains(err.Error(), "insufficient funds") {
					return nil
				}
				return err
			})
		}
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, 0)
	}
	wg.Wait()

	primary := killPrimary(t, cl, func(m Machines) amnet.MachineID { return m.Bank })
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, transfers/2)
	}
	waitForFailover(t, cl, primary, func(m Machines) amnet.MachineID { return m.Bank })
	wg.Wait()

	// Exact money conservation through the election: every dollar is in
	// exactly one account on the self-promoted standby.
	total := int64(0)
	for i := range caps {
		var bal map[string]int64
		untilOK(t, "balance", func(ctx context.Context) error {
			var err error
			bal, err = bank.Balance(ctx, caps[i])
			return err
		})
		total += bal["dollar"]
	}
	if total != accounts*grant {
		t.Fatalf("money not conserved across auto-failover: %d, want %d", total, accounts*grant)
	}
}

// TestChaosDoubleFailure kills the primary, lets the group elect, lets
// the old machine rejoin, then kills the NEW primary mid-soak — two
// full elections in one run, every acknowledged op intact after both.
func TestChaosDoubleFailure(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runDoubleFailure(t, 0xDB1F_0000+uint64(i))
		})
	}
}

func runDoubleFailure(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	const workers, phases, perPhase = 4, 3, 2
	const perWorker = phases * perPhase
	subs := make([]Capability, workers*perWorker)
	enter := func(g, i int) {
		name := fmt.Sprintf("w%d-e%d", g, i)
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	var wg sync.WaitGroup
	phase := func(p int) {
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := p * perPhase; i < (p+1)*perPhase; i++ {
					enter(g, i)
				}
			}(g)
		}
	}

	phase(0)
	wg.Wait()

	// First failure: the boot primary dies mid-soak.
	p0 := killPrimary(t, cl, func(m Machines) amnet.MachineID { return m.Dirs })
	phase(1)
	p1 := waitForFailover(t, cl, p0, func(m Machines) amnet.MachineID { return m.Dirs })

	// The dead machine rejoins as a fresh standby, restoring the group
	// to three live members — without this, a second election could not
	// reach a majority of the configured group, and the survivor would
	// (correctly) refuse to serve.
	untilOK(t, "reintegrate p0", func(ctx context.Context) error { return cl.Restart(p0) })
	wg.Wait()

	// Second failure: the NEWLY PROMOTED primary dies mid-soak too.
	p1 = killPrimary(t, cl, func(m Machines) amnet.MachineID { return m.Dirs })
	phase(2)
	waitForFailover(t, cl, p1, func(m Machines) amnet.MachineID { return m.Dirs })
	wg.Wait()

	// Both elections behind us: every acknowledged entry is present with
	// its exact capability.
	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after the double failure, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			got, ok := listed[name]
			if !ok {
				t.Fatalf("acknowledged entry %q lost across the double failure", name)
			}
			if got != subs[g*perWorker+i] {
				t.Fatalf("entry %q came back with a different capability", name)
			}
		}
	}
	cl.mu.Lock()
	term := cl.dirsGroup.term
	cl.mu.Unlock()
	if term < 3 {
		t.Fatalf("group term %d after two elections, want ≥ 3", term)
	}
}

// TestGroupLeaseSplitBrainGuard is the lease-era successor of
// TestRestartAfterPromoteSplitBrain: split-brain is prevented by time
// plus quorum (the old primary's lease lapses before any standby's
// detector can fire, and stale terms bounce), NOT by exiling the dead
// machine — so after the failover the machine REJOINS as a standby and
// the group is whole again, with exactly one server ever behind the
// port.
func TestGroupLeaseSplitBrainGuard(t *testing.T) {
	cl := groupCluster(t, 0x5B12)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})
	untilOK(t, "enter pre", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "pre", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})

	primary := killPrimary(t, cl, func(m Machines) amnet.MachineID { return m.Dirs })
	waitForFailover(t, cl, primary, func(m Machines) amnet.MachineID { return m.Dirs })

	// The successor serves the same port with the pre-crash state.
	untilOK(t, "post-failover lookup", func(ctx context.Context) error {
		_, err := dirs.Lookup(ctx, root, "pre")
		return err
	})
	untilOK(t, "post-failover enter", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "post", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})

	// The old machine is NOT exiled: Restart re-integrates it as a
	// fresh standby (its divergent log tail discarded), and the group's
	// epoch has advanced so any stale stream of its would bounce.
	if err := cl.Restart(primary); err != nil {
		t.Fatalf("lease-guarded group refused re-integration: %v", err)
	}
	cl.mu.Lock()
	standbys, term := len(cl.dirsGroup.standbys), cl.dirsGroup.term
	cl.mu.Unlock()
	if (term == 2 && standbys != 2) || term < 2 {
		t.Fatalf("after re-integration: %d standbys (want 2), term %d (want ≥ 2)", standbys, term)
	}

	// Chained failover: the re-formed group survives killing the NEW
	// primary as well — the availability story end to end, no Promote.
	next := killPrimary(t, cl, func(m Machines) amnet.MachineID { return m.Dirs })
	waitForFailover(t, cl, next, func(m Machines) amnet.MachineID { return m.Dirs })
	untilOK(t, "second failover lookup", func(ctx context.Context) error {
		_, err := dirs.Lookup(ctx, root, "post")
		return err
	})
}

// TestGroupLifecycleGuards: the manual standby verbs refuse group
// machines (the group manages itself), standby kills are absorbed
// without an election, and a killed standby rejoins via Restart.
func TestGroupLifecycleGuards(t *testing.T) {
	cl := groupCluster(t, 0x6A4E)
	m := cl.Machines()

	if err := cl.Promote(m.Dirs); err == nil || !strings.Contains(err.Error(), "elects its own") {
		t.Fatalf("Promote on a group primary: %v", err)
	}
	if err := cl.AddBackup(m.Dirs); err == nil || !strings.Contains(err.Error(), "manages its own membership") {
		t.Fatalf("AddBackup on a group primary: %v", err)
	}
	if err := cl.Drain(m.Bank); err == nil || !strings.Contains(err.Error(), "Kill the machine") {
		t.Fatalf("Drain on a group primary: %v", err)
	}

	// Kill one standby: no election (the primary is fine), the group
	// keeps serving, and the standby's machine can rejoin.
	cl.mu.Lock()
	stMachine := cl.dirsGroup.standbys[0].machine
	cl.mu.Unlock()
	if err := cl.Kill(stMachine); err != nil {
		t.Fatal(err)
	}
	if err := cl.Kill(stMachine); err == nil || !strings.Contains(err.Error(), "already down") {
		t.Fatalf("double Kill of a standby: %v", err)
	}
	if got := cl.Machines().Dirs; got != m.Dirs {
		t.Fatal("killing a standby triggered an election")
	}
	dirs := cl.Dirs()
	untilOK(t, "write with a dead standby", func(ctx context.Context) error {
		_, err := dirs.CreateDir(ctx, cl.DirPort())
		return err
	})
	if err := cl.Restart(stMachine); err != nil {
		t.Fatalf("killed standby could not rejoin: %v", err)
	}
	cl.mu.Lock()
	standbys := len(cl.dirsGroup.standbys)
	cl.mu.Unlock()
	if standbys != 2 {
		t.Fatalf("group has %d standbys after standby re-integration, want 2", standbys)
	}
	untilOK(t, "write after standby rejoin", func(ctx context.Context) error {
		_, err := dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	// Replicate and Replicas stay mutually exclusive.
	if _, err := NewCluster(ClusterConfig{Replicate: true, Replicas: 3}); err == nil {
		t.Fatal("Replicate+Replicas accepted")
	}
}
