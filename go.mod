module amoeba

go 1.24
