package amoeba

import (
	"context"
	"errors"
	"fmt"
	stdlog "log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
	"amoeba/internal/lease"
	"amoeba/internal/locate"
	"amoeba/internal/obs"
	"amoeba/internal/repl"
	"amoeba/internal/rpc"
	"amoeba/internal/server/banksvr"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/flatfs"
	"amoeba/internal/server/memsvr"
	"amoeba/internal/server/mvfs"
	"amoeba/internal/server/unixfs"
	"amoeba/internal/shard"
	"amoeba/internal/svc"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// ClusterConfig configures a simulated Amoeba cluster. The zero value
// starts every service with scheme 2 (one-way functions, the scheme
// production Amoeba used) on a perfect network.
type ClusterConfig struct {
	// Scheme selects the rights-protection algorithm for all services
	// (default SchemeOneWay).
	Scheme SchemeID
	// Seed makes the cluster deterministic; 0 draws from crypto/rand.
	Seed uint64
	// Latency, Jitter, LossRate, Duplicate and Reorder shape the
	// simulated network (see amnet.SimConfig); the fault knobs drive
	// the chaos tests.
	Latency   time.Duration
	Jitter    time.Duration
	LossRate  float64
	Duplicate float64
	Reorder   float64
	// MaxInflight bounds each service's worker pool (0 = the
	// rpc.DefaultMaxInflight default). See rpc.ServerConfig.
	MaxInflight int
	// DiskBlocks and DiskBlockSize set the block server's geometry
	// (defaults: 4096 × 1 KiB).
	DiskBlocks    uint32
	DiskBlockSize int
	// Bank sets the bank server's policy (default: minting allowed,
	// dollar/franc convertible at 5 francs per dollar).
	Bank *banksvr.Config
	// SealCapabilities additionally protects every capability in
	// flight with the §2.4 key matrix: request and reply capability
	// fields are encrypted under per-(source, destination) keys. This
	// composes with the F-box protection; a wiretap then sees only
	// ciphertext capabilities. See EXPERIMENTS.md E8.
	SealCapabilities bool
	// Replicate boots the durable services (directory and bank) with a
	// hot standby each: a backup machine holding the same state on its
	// own write-ahead log, fed synchronously from the primary's commit
	// path. After Kill of a replicated primary, Promote fails the
	// service over to its standby with zero acknowledged operations
	// lost. See EXPERIMENTS.md E19.
	Replicate bool
	// Replicas ≥ 2 boots each durable service as a replication GROUP
	// of that total size (a primary plus Replicas-1 standbys) with
	// leased leadership and automatic failover: the primary's serving
	// lease is renewed by acks on the ship stream (bare heartbeats
	// when idle), a lapsed lease fences acknowledgements, each standby
	// runs a failure detector, and on primary silence the
	// highest-acked standby auto-promotes — nobody calls Promote.
	// Killed or promoted-away machines rejoin as fresh standbys via
	// Restart. Mutually exclusive with Replicate. See EXPERIMENTS E21.
	Replicas int
	// Shards ≥ 2 partitions each durable service's object space across
	// that many machines: every shard serves the SAME put-port (one
	// get-port, M machines), a versioned shard map routes each object
	// number to its shard, and capability tables mint only numbers that
	// route back to the minting shard. Each shard may itself be a
	// replication group (compose with Replicas); Cluster.Migrate moves
	// single objects between shards live. Mutually exclusive with
	// Replicate (the legacy single-standby mode predates sharding). See
	// EXPERIMENTS.md E23.
	Shards int
	// LeaseTerm is the group serving-lease duration (default 150ms).
	// Standby failure detectors fire after 1.5 terms of silence, so
	// the guarantee tolerates clock skew up to LeaseTerm/2. Shorter
	// terms fail over faster but heartbeat more.
	LeaseTerm time.Duration
	// DebugAddr starts an HTTP debug listener serving /metrics
	// (Prometheus text format), /debug/vars (expvar + JSON metrics),
	// /debug/requests (the access-log ring) and /debug/pprof. Use
	// "127.0.0.1:0" for an ephemeral port (see Cluster.DebugURL).
	// Empty leaves the listener off; metrics are collected either way.
	DebugAddr string
	// AccessLogSize bounds the in-memory ring of recent request records
	// (rounded up to a power of two; default 1024).
	AccessLogSize int
	// LookupLease > 0 turns on lease-based client caching of directory
	// lookups: the directory servers grant a lease of this duration on
	// every lookup reply, and Dirs() returns a caching client that
	// answers reads under an unexpired lease locally — zero RPCs.
	// Mutations bump a per-directory generation carried on the
	// mutator's reply, so a client's own writes invalidate its cache
	// instantly; everyone else's staleness is bounded by this duration.
	// Zero (the default) leaves leases off and the wire byte-identical.
	LookupLease time.Duration
}

// Cluster is a complete single-process Amoeba system on a simulated
// network: one machine per service plus one client machine. It exists
// so examples, tests and experiments can stand a whole system up in a
// few milliseconds; the services themselves are the same code a TCP
// deployment runs.
//
// The directory and bank servers — the two services whose loss would
// strand capabilities or bend the money supply — run durable: their
// mutations are written ahead to per-service logs on simulated stable
// storage, so Kill and Restart model a machine crash the cluster
// actually recovers from.
type Cluster struct {
	net    *amnet.SimNet
	src    crypto.Source
	scheme cap.Scheme
	cfg    ClusterConfig

	client   *rpc.Client
	clientFB *fbox.FBox

	memory *memsvr.Server
	blocks *blocksvr.Server
	files  *flatfs.Server
	disk   *vdisk.Disk

	// matrix is non-nil when SealCapabilities is on.
	matrix *keymatrix.Matrix

	// Observability: one registry and one access-log ring for the whole
	// cluster, shared by every service's ServerStats. Both are always
	// on (pure atomics when nobody scrapes); debugURL is set only when
	// ClusterConfig.DebugAddr started a listener.
	reg      *obs.Registry
	ring     *obs.Ring
	debugURL string

	// lookupCache holds lease-cached directory bindings for every
	// Dirs() client; non-nil only when ClusterConfig.LookupLease > 0.
	lookupCache *lease.Cache

	closersMu sync.Mutex
	closers   []func() error
	closing   atomic.Bool // set by Close; late detector fires become no-ops

	// lifeMu serializes the lifecycle verbs — Kill, Restart, AddBackup,
	// Promote — end to end: each publishes intermediate states (down
	// flags, half-built standbys, a NIC that is closing) that the
	// others must never observe mid-flight. These are rare operator
	// actions; coarse serialization is the correctness tool, while mu
	// below stays the fine-grained field guard.
	lifeMu sync.Mutex

	// mu guards the fields Kill/Restart swap out: the durable servers,
	// their F-boxes, and the machine map.
	mu       sync.Mutex
	dirs     *dirsvr.Server
	multi    *mvfs.Server
	bank     *banksvr.Server
	dirsFB   *fbox.FBox
	bankFB   *fbox.FBox
	dirsDown bool
	bankDown bool
	machines Machines

	// Stable storage and identity the durable services carry across
	// Kill/Restart: the WAL disks survive the crash (they model the
	// machine's disk), and the get-ports pin the servers' put-ports.
	dirsWAL *vdisk.Disk
	bankWAL *vdisk.Disk
	dirsG   cap.Port
	bankG   cap.Port

	// walFaults maps each durable incarnation's machine to the fault
	// injector wrapped around its WAL store — the chaos tests' handle
	// for killing any machine's disk mid-soak. Keyed by machine because
	// a machine IS an incarnation here: Restart reopens the same disk
	// under a new machine and a fresh injector (a replaced disk is a
	// healthy disk).
	walFaults map[amnet.MachineID]*vdisk.FaultStore

	// Hot-standby state (ClusterConfig.Replicate / AddBackup): per
	// durable service, the standby and the primary-side shipper, plus
	// the set of machines whose put-port was promoted away. In legacy
	// mode those machines may never re-register the port (the
	// split-brain guard in Restart); in group mode Restart routes them
	// back in as fresh standbys instead.
	dirsBackup *standby
	bankBackup *standby
	dirsShip   *repl.Shipper
	bankShip   *repl.Shipper
	promoted   map[amnet.MachineID]promotedAway

	// Replication groups (ClusterConfig.Replicas): per durable
	// service, the standby set, the current term and the election
	// generation. The active shipper doubles into dirsShip/bankShip so
	// the gauges follow the current primary.
	dirsGroup *replGroup
	bankGroup *replGroup

	// Sharding (ClusterConfig.Shards): the process-wide shard-map
	// directory every resolver and kernel view reads, plus shards
	// 1..M-1 of each durable service (shard 0 stays in the legacy
	// fields above). The slices are append-only after boot (the shards
	// themselves swap machines in place); guarded by cl.mu.
	atlas      *shard.Atlas
	dirShards  []*svcShard
	bankShards []*svcShard
}

// promotedAway records why a machine may not simply re-register its
// put-port: the service failed over, and seq is the successor's
// starting high-water sequence — everything the dead machine's log
// holds beyond its acknowledged prefix is a dead branch of history.
type promotedAway struct {
	service string
	seq     uint64
}

// PromotedAwayError is Restart's typed refusal for a machine whose
// put-port was promoted to a backup (legacy single-standby mode; a
// replication group re-integrates the machine instead).
type PromotedAwayError struct {
	Machine amnet.MachineID
	Service string
	// DiscardedSeq is the high-water sequence the successor took over
	// with; the refused machine's log beyond that point is discarded.
	DiscardedSeq uint64
}

func (e *PromotedAwayError) Error() string {
	return fmt.Sprintf("amoeba: machine %v's %s put-port was promoted to a backup; refusing to re-register it (split-brain); its log beyond seq %d is a dead branch",
		e.Machine, e.Service, e.DiscardedSeq)
}

// replGroup is one durable service's replication-group state. Mutable
// fields (term, gen, standbys, ship) are guarded by cl.mu for reads;
// mutations additionally hold cl.lifeMu (elections, kills and
// re-integrations serialize there).
type replGroup struct {
	name string
	term uint64 // current replication epoch (starts at 1)
	gen  uint64 // election generation; stale detector callbacks no-op
	ship *repl.Shipper
	// standbys holds every group member that is not the primary,
	// including killed ones (down) awaiting re-integration.
	standbys []*groupStandby
	// build constructs a fresh standby incarnation of the service.
	build func(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error)
	// swap makes st the primary in the cluster's service fields and
	// installs its shipper (called with cl.mu held).
	swap func(st *groupStandby, ship *repl.Shipper)
	// primary introspection + shipper bookkeeping (cl.mu held).
	primaryKernel  func() *svc.Kernel
	primaryFB      func() *fbox.FBox
	primaryMachine func() amnet.MachineID
	setShip        func(*repl.Shipper)
}

// groupStandby is one non-primary member of a replication group: an
// un-started service kernel fed by a repl.Receiver, watched by a
// failure detector.
type groupStandby struct {
	fb      *fbox.FBox
	disk    *vdisk.Disk
	recv    *repl.Receiver
	machine amnet.MachineID
	srv     kernelServer
	kern    *svc.Kernel
	det     *repl.Detector
	down    bool
}

// standby is a hot backup of one durable service: an un-started service
// kernel on its own machine and WAL disk, kept current by a
// repl.Receiver. Promotion stops the receiver and starts the kernel —
// the service reappears at the same put-port, on the standby's machine.
type standby struct {
	fb      *fbox.FBox
	disk    *vdisk.Disk
	recv    *repl.Receiver
	machine amnet.MachineID
	promote func() error // stop receiver, start kernel, swap cluster fields
	discard func() error // drop the standby (receiver + kernel die)
}

// Machines identifies the cluster's machines on the simulated
// network, for partitioning experiments (SimNet.Partition/Heal).
type Machines struct {
	Client   amnet.MachineID
	Memory   amnet.MachineID
	Blocks   amnet.MachineID
	Files    amnet.MachineID
	Dirs     amnet.MachineID
	Versions amnet.MachineID
	Bank     amnet.MachineID
}

// Machines returns the machine IDs of the cluster's client and
// service hosts. A restarted service reappears on a NEW machine (a
// re-incarnation elsewhere on the LAN) — re-read after Restart.
func (cl *Cluster) Machines() Machines {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.machines
}

// NewCluster boots a cluster with every §3 service running.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Scheme == 0 {
		cfg.Scheme = SchemeOneWay
	}
	if cfg.Replicate && cfg.Replicas >= 2 {
		return nil, errors.New("amoeba: Replicate (manual single standby) and Replicas (auto-failover group) are mutually exclusive")
	}
	if cfg.Shards >= 2 && cfg.Replicate {
		return nil, errors.New("amoeba: Shards and Replicate are mutually exclusive; shard replication composes with Replicas (group mode)")
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 4096
	}
	if cfg.DiskBlockSize == 0 {
		cfg.DiskBlockSize = 1024
	}
	scheme, err := cap.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	var src crypto.Source
	if cfg.Seed != 0 {
		src = crypto.NewSeededSource(cfg.Seed)
	} else {
		src = crypto.SystemSource()
	}

	cl := &Cluster{
		net: amnet.NewSimNet(amnet.SimConfig{
			Latency:   cfg.Latency,
			Jitter:    cfg.Jitter,
			LossRate:  cfg.LossRate,
			Duplicate: cfg.Duplicate,
			Reorder:   cfg.Reorder,
			Seed:      cfg.Seed,
		}),
		src:       src,
		scheme:    scheme,
		cfg:       cfg,
		promoted:  make(map[amnet.MachineID]promotedAway),
		walFaults: make(map[amnet.MachineID]*vdisk.FaultStore),
		atlas:     shard.NewAtlas(),
	}
	if cfg.SealCapabilities {
		cl.matrix = keymatrix.NewMatrix(src)
	}
	ringSize := cfg.AccessLogSize
	if ringSize == 0 {
		ringSize = 1024
	}
	cl.reg = obs.NewRegistry()
	cl.ring = obs.NewRing(ringSize)
	// Lookup-cache counters are registered even with leases off, so
	// dashboards see the series at zero instead of a gap; the cache
	// itself exists only when the knob is on.
	lookupCtr := lease.Counters{
		Hits:        cl.reg.Counter("amoeba_lookup_cache_hits_total", obs.L("service", "directory"), "directory lookups served from the client lease cache"),
		Misses:      cl.reg.Counter("amoeba_lookup_cache_misses_total", obs.L("service", "directory"), "directory lookups with no cached binding"),
		Expired:     cl.reg.Counter("amoeba_lookup_cache_expired_total", obs.L("service", "directory"), "cached bindings refused because their lease lapsed"),
		Invalidated: cl.reg.Counter("amoeba_lookup_cache_invalidated_total", obs.L("service", "directory"), "cached bindings refused because the client's own write superseded them"),
	}
	if cfg.LookupLease > 0 {
		cl.lookupCache = lease.New(0, lookupCtr)
	}
	ok := false
	defer func() {
		if !ok {
			cl.Close()
		}
	}()

	// Client machine.
	cl.clientFB, err = cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.client = cl.newRPCClient(cl.clientFB)
	cl.machines.Client = cl.clientFB.Machine()

	// Memory server.
	memFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Memory = memFB.Machine()
	cl.memory = memsvr.New(memFB, scheme, src)
	cl.memory.SetMaxInflight(cfg.MaxInflight)
	cl.memory.SetObserver(cl.newStats("memory"))
	cl.sealServer(memFB, cl.memory.SetSealer)
	if err := cl.start(cl.memory.Start, cl.memory.Close); err != nil {
		return nil, err
	}

	// Block server.
	cl.disk, err = vdisk.New(cfg.DiskBlocks, cfg.DiskBlockSize)
	if err != nil {
		return nil, err
	}
	blkFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Blocks = blkFB.Machine()
	cl.blocks, err = blocksvr.New(blkFB, scheme, src, cl.disk)
	if err != nil {
		return nil, err
	}
	cl.blocks.SetMaxInflight(cfg.MaxInflight)
	cl.blocks.SetObserver(cl.newStats("blocks"))
	cl.sealServer(blkFB, cl.blocks.SetSealer)
	if err := cl.start(cl.blocks.Start, cl.blocks.Close); err != nil {
		return nil, err
	}

	// Flat file server (a client of the block server, from its own
	// machine).
	fileFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	fileRPC := cl.newRPCClient(fileFB)
	cl.machines.Files = fileFB.Machine()
	cl.files, err = flatfs.New(context.Background(), fileFB, scheme, src, blocksvr.NewClient(fileRPC, cl.blocks.PutPort()))
	if err != nil {
		return nil, err
	}
	cl.files.SetMaxInflight(cfg.MaxInflight)
	cl.files.SetObserver(cl.newStats("files"))
	cl.sealServer(fileFB, cl.files.SetSealer)
	if err := cl.start(cl.files.Start, cl.files.Close); err != nil {
		return nil, err
	}

	// Directory server — durable: its write-ahead log lives on a
	// dedicated simulated disk that survives Kill/Restart, and its
	// get-port is pinned so the reincarnation answers at the same
	// put-port every directory capability names.
	if cl.dirsWAL, err = vdisk.New(walBlocks, walBlockSize); err != nil {
		return nil, err
	}
	cl.dirsG = cap.Port(crypto.Rand48(src))
	if err := cl.startDirsvr(); err != nil {
		return nil, err
	}

	// Multiversion file server.
	mvFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Versions = mvFB.Machine()
	cl.multi = mvfs.New(mvFB, scheme, src)
	cl.multi.SetMaxInflight(cfg.MaxInflight)
	cl.multi.SetObserver(cl.newStats("versions"))
	cl.sealServer(mvFB, cl.multi.SetSealer)
	if err := cl.start(cl.multi.Start, cl.multi.Close); err != nil {
		return nil, err
	}

	// Bank server — durable, like the directory server: money must
	// survive the machine.
	if cl.bankWAL, err = vdisk.New(walBlocks, walBlockSize); err != nil {
		return nil, err
	}
	cl.bankG = cap.Port(crypto.Rand48(src))
	if err := cl.startBanksvr(); err != nil {
		return nil, err
	}

	// Extra shards of the durable services (shard 0 is the pair booted
	// above), then the shard maps — registered only once every shard's
	// machine is known.
	if cfg.Shards >= 2 {
		if err := cl.startShards(); err != nil {
			return nil, err
		}
	}

	// Hot standbys for the durable services: base snapshot + synchronous
	// WAL shipping from the primaries' commit paths.
	if cfg.Replicate {
		if err := cl.AddBackup(cl.Machines().Dirs); err != nil {
			return nil, err
		}
		if err := cl.AddBackup(cl.Machines().Bank); err != nil {
			return nil, err
		}
	}
	// Replication groups: N-1 standbys per durable service, leased
	// leadership, automatic failover.
	if cfg.Replicas >= 2 {
		cl.dirsGroup = cl.newDirsGroup()
		cl.bankGroup = cl.newBankGroup()
		if err := cl.startGroup(cl.dirsGroup); err != nil {
			return nil, err
		}
		if err := cl.startGroup(cl.bankGroup); err != nil {
			return nil, err
		}
		// Every extra shard is its own replication group: per-shard
		// leases, detectors and elections — one shard's failover never
		// touches another's.
		for _, sh := range append(append([]*svcShard(nil), cl.dirShards...), cl.bankShards...) {
			sh.group = cl.newShardGroup(sh)
			if err := cl.startGroup(sh.group); err != nil {
				return nil, err
			}
		}
	}

	cl.registerGauges()
	cl.registerShardMetrics()
	if cfg.DebugAddr != "" {
		if err := cl.startDebugServer(cfg.DebugAddr); err != nil {
			return nil, err
		}
	}

	ok = true
	return cl, nil
}

// WAL geometry for the durable services' simulated disks: 2048 × 512 B
// (1 MiB) per service, checkpoint-compacted at half full.
const (
	walBlocks    = 2048
	walBlockSize = 512
)

// newStats builds a service's request-metrics + access-log observer.
// The registry is idempotent on (name, labels), so a restarted or
// promoted incarnation under the same label continues the original
// counters instead of resetting them.
func (cl *Cluster) newStats(service string) *obs.ServerStats {
	return obs.NewServerStats(cl.reg, cl.ring, service, rpc.StatusName)
}

// walMetrics builds a durable service's commit-path histograms. Like
// newStats, re-building for a new incarnation lands on the same series.
func (cl *Cluster) walMetrics(service string) *wal.Metrics {
	return &wal.Metrics{
		SyncLatency:  cl.reg.Histogram("amoeba_wal_sync_ns", obs.L("service", service), "write-ahead log group-commit latency (arena write + sync), nanoseconds"),
		BatchRecords: cl.reg.Histogram("amoeba_wal_batch_records", obs.L("service", service), "records per write-ahead log group commit"),
	}
}

// Help strings for the gray-failure counters, shared by the boot-time
// registration and the increment sites (the registry is idempotent on
// (name, labels), and the help text must agree).
const (
	wedgedHelp  = "write-ahead logs wedged by an I/O failure (log turned read-only)"
	demotedHelp = "primaries that fail-stopped themselves over a wedged WAL (gray disk failure converted to a crash)"
)

// openWAL opens a durable service's write-ahead log over disk, wrapped
// in a deterministic fault injector keyed by the serving machine —
// every WAL in the cluster (primaries and standbys alike) can have its
// disk killed mid-soak via WALFault. The log's wedge callback is wired
// here too: a wedged WAL bumps amoeba_wal_wedged_total and fail-stops
// the machine, because a disk that takes nothing makes the machine a
// liability the moment it keeps answering the network.
func (cl *Cluster) openWAL(service string, fb *fbox.FBox, disk *vdisk.Disk) (*wal.Log, error) {
	m := fb.Machine()
	fs := vdisk.NewFaultStore(disk, cl.cfg.Seed^uint64(m)*0x9E3779B97F4A7C15)
	log, err := wal.Open(fs, wal.Options{Metrics: cl.walMetrics(service)})
	if err != nil {
		return nil, err
	}
	log.OnWedge(func(cause error) { cl.onWALWedge(service, m, cause) })
	cl.mu.Lock()
	cl.walFaults[m] = fs
	cl.mu.Unlock()
	return log, nil
}

// WALFault returns the disk-fault injector wrapped around the WAL of
// the durable incarnation on machine m (primary or standby), or nil if
// m hosts no WAL. Restart reopens the service's disk under a NEW
// machine with a fresh injector, so injected faults die with the
// incarnation — re-read Machines after a restart.
func (cl *Cluster) WALFault(m amnet.MachineID) *vdisk.FaultStore {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.walFaults[m]
}

// onWALWedge is every WAL's wedge callback (it runs on the log's own
// callback goroutine, so it may block on the lifecycle lock).
func (cl *Cluster) onWALWedge(service string, m amnet.MachineID, cause error) {
	cl.reg.Counter("amoeba_wal_wedged_total", obs.L("service", service), wedgedHelp).Inc()
	if cl.closing.Load() {
		return
	}
	stdlog.Printf("amoeba: %s WAL on machine %v wedged: %v", service, m, cause)
	cl.failStopWedged(service, m)
}

// failStopWedged converts a gray failure into the fail-stop crash the
// rest of the cluster already understands. A wedged PRIMARY is the
// nightmare case: its disk takes nothing, yet its NIC keeps answering
// LOCATE and heartbeats, so no failure detector anywhere would fire.
// The shipper has already renounced leadership (repl.Shipper.SelfDemote
// fences acknowledgements and silences heartbeats); tearing the machine
// down here finishes the job — the NIC goes away, LOCATE stops
// answering for it, and the standbys elect exactly as if the machine
// had crashed. A wedged group STANDBY needs none of this: its receiver
// already answers every frame with its death, which drops it from the
// ack quorum; the corpse waits for Kill+Restart to re-integrate with a
// fresh disk.
func (cl *Cluster) failStopWedged(service string, m amnet.MachineID) {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	if cl.closing.Load() {
		return
	}
	cl.mu.Lock()
	if g, st := cl.groupOfLocked(m); g != nil && st != nil {
		cl.mu.Unlock()
		return
	}
	c := cl.durableCtlLocked(m)
	if c == nil || c.down {
		// Not a current primary (already killed, already failed over, or
		// a legacy standby whose dead receiver suffices).
		cl.mu.Unlock()
		return
	}
	c.setDown(true)
	cl.mu.Unlock()
	cl.reg.Counter("amoeba_self_demotions_total", obs.L("service", service), demotedHelp).Inc()
	// Kill's teardown order, for Kill's reason: the NIC dies before the
	// shipper so no handler can commit locally, skip the stopped ship,
	// and still acknowledge its client.
	_ = c.fb.Close()
	if c.ship != nil {
		c.ship.Stop()
	}
	_ = c.crash()
	stdlog.Printf("amoeba: %s machine %v fail-stopped (wedged WAL); dead disk, dead machine", service, m)
}

// registerGauges wires the scrape-time gauges: queue depth and queue
// wait per service, WAL occupancy and replication lag for the durable
// pair. Gauge functions run only when someone exports the registry, so
// they may take cl.mu to read through Kill/Restart/Promote swaps.
func (cl *Cluster) registerGauges() {
	type source struct {
		name   string
		kernel func() *svc.Kernel // nil while the service is down
	}
	static := func(k *svc.Kernel) func() *svc.Kernel {
		return func() *svc.Kernel { return k }
	}
	sources := []source{
		{"memory", static(cl.memory.Kernel)},
		{"blocks", static(cl.blocks.Kernel)},
		{"files", static(cl.files.Kernel)},
		{"versions", static(cl.multi.Kernel)},
		{"directory", func() *svc.Kernel {
			cl.mu.Lock()
			defer cl.mu.Unlock()
			if cl.dirsDown || cl.dirs == nil {
				return nil
			}
			return cl.dirs.Kernel
		}},
		{"bank", func() *svc.Kernel {
			cl.mu.Lock()
			defer cl.mu.Unlock()
			if cl.bankDown || cl.bank == nil {
				return nil
			}
			return cl.bank.Kernel
		}},
	}
	for _, s := range sources {
		kernel := s.kernel
		labels := obs.L("service", s.name)
		cl.reg.GaugeFunc("amoeba_queue_depth", labels, "requests queued for or occupying pool workers", func() float64 {
			k := kernel()
			if k == nil {
				return 0
			}
			return float64(k.Inflight())
		})
		cl.reg.GaugeFunc("amoeba_queue_wait_ewma_ns", labels, "smoothed recent queue wait, nanoseconds", func() float64 {
			k := kernel()
			if k == nil {
				return 0
			}
			return float64(k.QueueWaitEWMA())
		})
	}
	for _, s := range sources[4:] { // the durable pair
		kernel := s.kernel
		labels := obs.L("service", s.name)
		cl.reg.GaugeFunc("amoeba_wal_used_bytes", labels, "live write-ahead log bytes (head - start)", func() float64 {
			k := kernel()
			if k == nil {
				return 0
			}
			return float64(k.LogStats().Used)
		})
		cl.reg.GaugeFunc("amoeba_wal_capacity_bytes", labels, "write-ahead log arena bytes usable before ErrFull", func() float64 {
			k := kernel()
			if k == nil {
				return 0
			}
			return float64(k.LogStats().Capacity)
		})
	}
	// Gray-failure counters exist from boot (not lazily at first wedge):
	// a dashboard alerting on rate(amoeba_wal_wedged_total) needs the
	// series present while it is still zero.
	for _, name := range []string{"directory", "bank"} {
		cl.reg.Counter("amoeba_wal_wedged_total", obs.L("service", name), wedgedHelp)
		cl.reg.Counter("amoeba_self_demotions_total", obs.L("service", name), demotedHelp)
	}
	ships := []struct {
		name string
		ship func() *repl.Shipper
	}{
		{"directory", func() *repl.Shipper { cl.mu.Lock(); defer cl.mu.Unlock(); return cl.dirsShip }},
		{"bank", func() *repl.Shipper { cl.mu.Lock(); defer cl.mu.Unlock(); return cl.bankShip }},
	}
	for _, s := range ships {
		ship := s.ship
		labels := obs.L("service", s.name)
		cl.reg.GaugeFunc("amoeba_ship_lag_records", labels, "records committed locally but not yet acknowledged by the standby", func() float64 {
			sh := ship()
			if sh == nil {
				return 0
			}
			return float64(sh.Lag())
		})
		cl.reg.GaugeFunc("amoeba_ship_lost", labels, "1 when the replication stream was written off (standby is stale)", func() float64 {
			sh := ship()
			if sh == nil || !sh.Lost() {
				return 0
			}
			return 1
		})
		cl.reg.GaugeFunc("amoeba_lease_valid", labels, "1 while the primary's serving lease holds a majority of fresh grants (always 1 outside group mode)", func() float64 {
			sh := ship()
			if sh == nil || !sh.LeaseValid() {
				return 0
			}
			return 1
		})
		cl.reg.GaugeFunc("amoeba_repl_term", labels, "current replication epoch (0 = legacy single-standby mode)", func() float64 {
			sh := ship()
			if sh == nil {
				return 0
			}
			return float64(sh.Term())
		})
	}
}

// startDebugServer exposes the registry, access log and pprof on
// cfg.DebugAddr.
func (cl *Cluster) startDebugServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("amoeba: debug listener: %w", err)
	}
	cl.debugURL = "http://" + ln.Addr().String()
	srv := &http.Server{Handler: obs.Mux(cl.reg, cl.ring, rpc.StatusName)}
	go srv.Serve(ln)
	cl.addCloser(func() error {
		if err := srv.Close(); err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	})
	return nil
}

// Metrics returns the cluster-wide metric registry (counters, gauges
// and latency histograms for every service). Always live, even with no
// debug listener.
func (cl *Cluster) Metrics() *obs.Registry { return cl.reg }

// AccessLog returns the cluster-wide ring of recent request records.
func (cl *Cluster) AccessLog() *obs.Ring { return cl.ring }

// DebugURL returns the debug HTTP server's base URL ("http://host:port"),
// or "" when ClusterConfig.DebugAddr was empty.
func (cl *Cluster) DebugURL() string { return cl.debugURL }

// startDirsvr boots a directory server incarnation over the cluster's
// WAL disk; NewCluster and Restart share it.
func (cl *Cluster) startDirsvr() error {
	fb, err := cl.newFBox()
	if err != nil {
		return err
	}
	log, err := cl.openWAL("directory", fb, cl.dirsWAL)
	if err != nil {
		return err
	}
	s, err := dirsvr.NewDurable(fb, cl.scheme, cl.src, log, cl.dirsG)
	if err != nil {
		log.Close() // the kernel never took ownership
		return err
	}
	s.SetMaxInflight(cl.cfg.MaxInflight)
	s.SetObserver(cl.newStats("directory"))
	s.SetLookupLease(cl.cfg.LookupLease)
	cl.sealServer(fb, s.SetSealer)
	cl.installShardView(s.Kernel, 0)
	if err := cl.start(s.Start, s.Close); err != nil {
		s.Close() // closes the log; a Restart retry reopens it
		return err
	}
	cl.mu.Lock()
	cl.dirs, cl.dirsFB, cl.machines.Dirs, cl.dirsDown = s, fb, fb.Machine(), false
	cl.mu.Unlock()
	cl.syncShardMachine(s.PutPort(), 0, fb.Machine())
	return nil
}

// bankConfig resolves the bank policy (stable across restarts).
func (cl *Cluster) bankConfig() banksvr.Config {
	if cl.cfg.Bank != nil {
		return *cl.cfg.Bank
	}
	return banksvr.Config{
		MintingAllowed: true,
		Rates: map[[2]string]banksvr.Rate{
			{"dollar", "franc"}: {Num: 5, Den: 1},
			{"franc", "dollar"}: {Num: 1, Den: 5},
		},
	}
}

// startBanksvr boots a bank server incarnation over the cluster's WAL
// disk; NewCluster and Restart share it.
func (cl *Cluster) startBanksvr() error {
	fb, err := cl.newFBox()
	if err != nil {
		return err
	}
	log, err := cl.openWAL("bank", fb, cl.bankWAL)
	if err != nil {
		return err
	}
	s, err := banksvr.NewDurable(fb, cl.scheme, cl.src, cl.bankConfig(), log, cl.bankG)
	if err != nil {
		log.Close() // the kernel never took ownership
		return err
	}
	s.SetMaxInflight(cl.cfg.MaxInflight)
	s.SetObserver(cl.newStats("bank"))
	cl.sealServer(fb, s.SetSealer)
	cl.installShardView(s.Kernel, 0)
	if err := cl.start(s.Start, s.Close); err != nil {
		s.Close() // closes the log; a Restart retry reopens it
		return err
	}
	cl.mu.Lock()
	cl.bank, cl.bankFB, cl.machines.Bank, cl.bankDown = s, fb, fb.Machine(), false
	cl.mu.Unlock()
	cl.syncShardMachine(s.PutPort(), 0, fb.Machine())
	return nil
}

// durableCtl is the per-service control surface Kill, Restart,
// AddBackup and Promote share — one place that knows which cluster
// fields belong to which durable service. Build it (and call setDown /
// clearBackup) under cl.mu.
type durableCtl struct {
	name    string
	fb      *fbox.FBox
	crash   func() error
	drain   func() error
	down    bool
	setDown func(bool)
	restart func() error

	ship        *repl.Shipper
	backup      *standby
	clearBackup func()       // detach the standby bookkeeping (cl.mu held)
	attach      func() error // build and wire a standby (cl.mu NOT held)
}

func (cl *Cluster) durableCtlLocked(m amnet.MachineID) *durableCtl {
	switch m {
	case cl.machines.Dirs:
		return &durableCtl{
			name: "directory", fb: cl.dirsFB, crash: cl.dirs.Crash, drain: cl.dirs.Drain,
			down:    cl.dirsDown,
			setDown: func(v bool) { cl.dirsDown = v }, restart: cl.startDirsvr,
			ship: cl.dirsShip, backup: cl.dirsBackup,
			clearBackup: func() { cl.dirsBackup, cl.dirsShip = nil, nil },
			attach:      cl.attachDirsBackup,
		}
	case cl.machines.Bank:
		return &durableCtl{
			name: "bank", fb: cl.bankFB, crash: cl.bank.Crash, drain: cl.bank.Drain,
			down:    cl.bankDown,
			setDown: func(v bool) { cl.bankDown = v }, restart: cl.startBanksvr,
			ship: cl.bankShip, backup: cl.bankBackup,
			clearBackup: func() { cl.bankBackup, cl.bankShip = nil, nil },
			attach:      cl.attachBankBackup,
		}
	}
	if sh := cl.shardOfLocked(m); sh != nil {
		// Extra shards carry the same verbs as shard 0 minus the legacy
		// single-standby pair (replication for them is group mode only).
		return &durableCtl{
			name: sh.service, fb: sh.fb, crash: sh.srv.Crash, drain: sh.kern.Drain,
			down:        sh.down,
			setDown:     func(v bool) { sh.down = v },
			restart:     func() error { return cl.startShard(sh) },
			ship:        sh.ship,
			clearBackup: func() {},
			attach: func() error {
				return fmt.Errorf("amoeba: %s supports group replication (Replicas), not a legacy backup", sh.service)
			},
		}
	}
	return nil
}

// newShipClient builds the replication channel's RPC client on the
// primary's machine. It skips the key-matrix sealer even when
// SealCapabilities is on: the stream carries WAL records, never
// capability fields, so there is nothing to seal.
func (cl *Cluster) newShipClient(fb *fbox.FBox) *rpc.Client {
	// TTL -1: the receiver's machine never moves within a shipper's
	// lifetime, so the route needs no periodic reconfirmation (the RPC
	// layer still evicts it on a delivery failure).
	res := locate.New(fb, locate.Config{TTL: -1})
	return rpc.NewClient(fb, res, rpc.ClientConfig{Source: cl.src})
}

// buildDirsStandby constructs an un-started directory-server
// incarnation over its own log — the standby half of both the legacy
// single-backup path and the replication group.
func (cl *Cluster) buildDirsStandby(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error) {
	s, err := dirsvr.NewDurable(fb, cl.scheme, cl.src, log, cl.dirsG)
	if err != nil {
		return nil, nil, nil, err
	}
	s.SetMaxInflight(cl.cfg.MaxInflight)
	// Same service label as the primary: the registry is idempotent, so
	// after promotion the successor keeps accumulating into the SAME
	// counters — no series break at failover.
	s.SetObserver(cl.newStats("directory"))
	s.SetLookupLease(cl.cfg.LookupLease)
	cl.sealServer(fb, s.SetSealer)
	cl.installShardView(s.Kernel, 0)
	return s, s.Kernel, s.ReplayFn(), nil
}

// buildBankStandby is buildDirsStandby for the bank server.
func (cl *Cluster) buildBankStandby(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error) {
	s, err := banksvr.NewDurable(fb, cl.scheme, cl.src, cl.bankConfig(), log, cl.bankG)
	if err != nil {
		return nil, nil, nil, err
	}
	s.SetMaxInflight(cl.cfg.MaxInflight)
	s.SetObserver(cl.newStats("bank")) // same label as the primary; see buildDirsStandby
	cl.sealServer(fb, s.SetSealer)
	cl.installShardView(s.Kernel, 0)
	return s, s.Kernel, s.ReplayFn(), nil
}

// attachDirsBackup builds a directory-server standby and wires the
// primary's commit path to it.
func (cl *Cluster) attachDirsBackup() error {
	cl.mu.Lock()
	primary, pfb := cl.dirs, cl.dirsFB
	cl.mu.Unlock()
	return cl.attachBackup("directory", primary.Kernel, pfb,
		cl.buildDirsStandby,
		func(st *standby, s kernelServer) { // install (cl.mu held)
			cl.dirsBackup = st
		},
		func(st *standby, s kernelServer) { // promote swap (cl.mu held)
			cl.dirs = s.(*dirsvr.Server)
			cl.dirsFB, cl.dirsWAL = st.fb, st.disk
			cl.machines.Dirs = st.machine
			cl.dirsDown = false
		},
		func(ship *repl.Shipper) { cl.dirsShip = ship },
		func() (bool, bool) { return cl.dirsDown, cl.dirsBackup != nil },
	)
}

// attachBankBackup builds a bank-server standby and wires the primary's
// commit path to it.
func (cl *Cluster) attachBankBackup() error {
	cl.mu.Lock()
	primary, pfb := cl.bank, cl.bankFB
	cl.mu.Unlock()
	return cl.attachBackup("bank", primary.Kernel, pfb,
		cl.buildBankStandby,
		func(st *standby, s kernelServer) {
			cl.bankBackup = st
		},
		func(st *standby, s kernelServer) {
			cl.bank = s.(*banksvr.Server)
			cl.bankFB, cl.bankWAL = st.fb, st.disk
			cl.machines.Bank = st.machine
			cl.bankDown = false
		},
		func(ship *repl.Shipper) { cl.bankShip = ship },
		func() (bool, bool) { return cl.bankDown, cl.bankBackup != nil },
	)
}

// kernelServer is the slice of a durable service the standby machinery
// needs: lifecycle plus nothing else.
type kernelServer interface {
	Start() error
	Close() error
	Crash() error
}

// attachBackup is the service-agnostic half of AddBackup: stand the
// standby kernel up on a fresh machine and WAL disk, start its
// receiver, and attach the primary's shipper (which quiesces the
// primary, ships the base snapshot, and hooks the commit path).
func (cl *Cluster) attachBackup(
	name string,
	primary *svc.Kernel,
	primaryFB *fbox.FBox,
	build func(fb *fbox.FBox, log *wal.Log) (kernelServer, *svc.Kernel, func(rec []byte) error, error),
	install func(st *standby, s kernelServer),
	swap func(st *standby, s kernelServer),
	setShip func(*repl.Shipper),
	state func() (down, hasBackup bool),
) error {
	fb, err := cl.newFBox()
	if err != nil {
		return err
	}
	disk, err := vdisk.New(walBlocks, walBlockSize)
	if err != nil {
		return err
	}
	log, err := cl.openWAL(name, fb, disk)
	if err != nil {
		return err
	}
	s, kern, replay, err := build(fb, log)
	if err != nil {
		log.Close() // the kernel never took ownership
		return err
	}
	cl.addCloser(s.Close)
	recv := repl.NewReceiver(fb, cl.src, kern, replay)
	if err := recv.Start(); err != nil {
		return err
	}
	cl.addCloser(recv.Close)
	ship, err := repl.Attach(primary, cl.newShipClient(primaryFB), recv.Port(), repl.Options{})
	if err != nil {
		recv.Close()
		return fmt.Errorf("amoeba: attaching %s backup: %w", name, err)
	}
	cl.addCloser(func() error { ship.Stop(); return nil })

	st := &standby{fb: fb, disk: disk, recv: recv, machine: fb.Machine()}
	st.promote = func() error {
		if err := recv.Close(); err != nil {
			return err
		}
		if err := s.Start(); err != nil {
			return err
		}
		cl.mu.Lock()
		swap(st, s)
		cl.mu.Unlock()
		return nil
	}
	st.discard = func() error {
		err := recv.Close()
		if cErr := s.Crash(); err == nil {
			err = cErr
		}
		return err
	}

	cl.mu.Lock()
	if down, has := state(); down || has {
		cl.mu.Unlock()
		ship.Stop()
		st.discard()
		return fmt.Errorf("amoeba: %s server changed while attaching its backup", name)
	}
	install(st, s)
	setShip(ship)
	cl.mu.Unlock()
	return nil
}

// defaultLeaseTerm is the group serving lease when ClusterConfig
// leaves LeaseTerm zero.
const defaultLeaseTerm = 150 * time.Millisecond

func (cl *Cluster) leaseTerm() time.Duration {
	if cl.cfg.LeaseTerm > 0 {
		return cl.cfg.LeaseTerm
	}
	return defaultLeaseTerm
}

// detectorGap is how long a standby tolerates primary silence before
// electing: 1.5 lease terms. The old primary's lease lapses (measured
// from its own send clock) after 1.0 terms, so even with the two clocks
// skewed by up to half a term the fence closes before a successor
// serves.
func (cl *Cluster) detectorGap() time.Duration {
	lt := cl.leaseTerm()
	return lt + lt/2
}

// groupShipOptions tunes a group-mode shipper for epoch term. The
// attempt budget is kept small: a dead standby should be declared lost
// (and shipped around) well before the client-visible RPC deadline.
func (cl *Cluster) groupShipOptions(term uint64) repl.Options {
	lt := cl.leaseTerm()
	return repl.Options{
		Timeout:   lt,
		Attempts:  4,
		Backoff:   2 * time.Millisecond,
		Reprobe:   lt,
		LeaseTerm: lt,
		GroupSize: cl.cfg.Replicas,
		Term:      term,
	}
}

// newDirsGroup binds the directory server's cluster fields into a
// replication group descriptor.
func (cl *Cluster) newDirsGroup() *replGroup {
	return &replGroup{
		name:  "directory",
		build: cl.buildDirsStandby,
		swap: func(st *groupStandby, ship *repl.Shipper) {
			cl.dirs = st.srv.(*dirsvr.Server)
			cl.dirsFB, cl.dirsWAL = st.fb, st.disk
			cl.machines.Dirs = st.machine
			cl.dirsDown = false
			cl.dirsShip = ship
			cl.syncShardMachine(cl.dirs.PutPort(), 0, st.machine)
		},
		primaryKernel:  func() *svc.Kernel { return cl.dirs.Kernel },
		primaryFB:      func() *fbox.FBox { return cl.dirsFB },
		primaryMachine: func() amnet.MachineID { return cl.machines.Dirs },
		setShip:        func(s *repl.Shipper) { cl.dirsShip = s },
	}
}

// newBankGroup is newDirsGroup for the bank server.
func (cl *Cluster) newBankGroup() *replGroup {
	return &replGroup{
		name:  "bank",
		build: cl.buildBankStandby,
		swap: func(st *groupStandby, ship *repl.Shipper) {
			cl.bank = st.srv.(*banksvr.Server)
			cl.bankFB, cl.bankWAL = st.fb, st.disk
			cl.machines.Bank = st.machine
			cl.bankDown = false
			cl.bankShip = ship
			cl.syncShardMachine(cl.bank.PutPort(), 0, st.machine)
		},
		primaryKernel:  func() *svc.Kernel { return cl.bank.Kernel },
		primaryFB:      func() *fbox.FBox { return cl.bankFB },
		primaryMachine: func() amnet.MachineID { return cl.machines.Bank },
		setShip:        func(s *repl.Shipper) { cl.bankShip = s },
	}
}

// buildGroupStandby stands one standby up on a fresh machine and WAL
// disk: an un-started service kernel fed by a started receiver.
func (cl *Cluster) buildGroupStandby(g *replGroup) (*groupStandby, error) {
	fb, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	disk, err := vdisk.New(walBlocks, walBlockSize)
	if err != nil {
		return nil, err
	}
	log, err := cl.openWAL(g.name, fb, disk)
	if err != nil {
		return nil, err
	}
	s, kern, replay, err := g.build(fb, log)
	if err != nil {
		log.Close() // the kernel never took ownership
		return nil, err
	}
	cl.addCloser(s.Close)
	recv := repl.NewReceiver(fb, cl.src, kern, replay)
	if err := recv.Start(); err != nil {
		return nil, err
	}
	cl.addCloser(recv.Close)
	return &groupStandby{fb: fb, disk: disk, recv: recv, machine: fb.Machine(), srv: s, kern: kern}, nil
}

// startGroup boots one durable service's replication group: Replicas-1
// standbys, the primary's fan-out shipper at term 1 with the serving
// lease installed as both replica fence and admission gate, and a
// failure detector armed on every standby.
func (cl *Cluster) startGroup(g *replGroup) error {
	dests := make([]cap.Port, 0, cl.cfg.Replicas-1)
	for i := 0; i < cl.cfg.Replicas-1; i++ {
		st, err := cl.buildGroupStandby(g)
		if err != nil {
			return err
		}
		g.standbys = append(g.standbys, st)
		dests = append(dests, st.recv.Port())
	}
	cl.mu.Lock()
	pk, pfb := g.primaryKernel(), g.primaryFB()
	cl.mu.Unlock()
	g.term = 1
	ship, err := repl.AttachGroup(pk, cl.newShipClient(pfb), dests, cl.groupShipOptions(g.term))
	if err != nil {
		return fmt.Errorf("amoeba: attaching %s group: %w", g.name, err)
	}
	cl.addCloser(func() error { ship.Stop(); return nil })
	pk.SetReplicaFence(ship.Fence)
	pk.SetAdmitGate(ship.Fence)
	cl.mu.Lock()
	g.ship = ship
	g.setShip(ship)
	cl.mu.Unlock()
	cl.startDetectors(g)
	return nil
}

// startDetectors arms a failure detector on every live standby that
// lacks one, bound to the CURRENT election generation — a detector
// that fires after a later election resolves to a no-op. Callers hold
// lifeMu (boot runs before any lifecycle verb can race).
func (cl *Cluster) startDetectors(g *replGroup) {
	cl.mu.Lock()
	gen := g.gen
	sts := append([]*groupStandby(nil), g.standbys...)
	cl.mu.Unlock()
	gap := cl.detectorGap()
	for _, st := range sts {
		if st.down || st.det != nil {
			continue
		}
		// The election runs on its own goroutine: onExpire is called
		// from the detector's poll loop, and the election stops every
		// detector in the group — including, possibly, a second one
		// mid-fire, which would deadlock if the first held its loop.
		det := repl.NewDetector(gap, st.recv.LastContact, func() {
			go cl.autoFailover(g, gen)
		}, nil)
		st.det = det
		det.Start()
	}
}

// rearmFiredDetectors replaces any detector that has fired with a fresh
// one, after an election was refused or vetoed: the alarm stays armed
// without the refusal being final. Caller holds lifeMu.
func (cl *Cluster) rearmFiredDetectors(g *replGroup) {
	cl.mu.Lock()
	for _, st := range g.standbys {
		if st.det != nil && st.det.Fired() {
			st.det.Stop()
			st.det = nil
		}
	}
	cl.mu.Unlock()
	cl.startDetectors(g)
}

// autoFailover is the election a standby's failure detector fires when
// the primary has been silent for 1.5 lease terms: the standby with
// the highest durable high water wins, the others become its peers,
// and the group moves to the next term. By the time this runs the old
// primary's lease (1.0 terms, on its own clock) has lapsed, so it is
// already refusing acknowledgements — the new primary can serve
// without overlap even before any StatusStale bounce reaches the old
// one.
func (cl *Cluster) autoFailover(g *replGroup, gen uint64) {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	if cl.closing.Load() {
		return // teardown, not an outage
	}
	cl.mu.Lock()
	if g.gen != gen {
		// A concurrent detector already ran this election (or a later
		// one); this silence is old news.
		cl.mu.Unlock()
		return
	}
	// Confirm the silence with the rest of the group before deposing
	// anyone: the primary heartbeats EVERY live standby, so if any
	// sibling heard it within half a detector gap the alarm is a local
	// stall — a GC pause counterfeits a silent primary on the stalled
	// side only. This is the in-process analogue of a pre-vote round;
	// electing on one member's say-so under load is how live primaries
	// get exiled.
	now := time.Now()
	for _, st := range g.standbys {
		if !st.down && now.Sub(st.recv.LastContact()) < cl.detectorGap()/2 {
			cl.mu.Unlock()
			cl.reg.Counter("amoeba_elections_refused_total", obs.L("service", g.name),
				"elections refused (no live quorum, or a sibling still hears the primary)").Inc()
			cl.rearmFiredDetectors(g)
			return
		}
	}
	g.gen++
	live := 0
	for _, st := range g.standbys {
		if !st.down {
			live++
		}
	}
	oldMachine := g.primaryMachine()
	oldShip, oldTerm := g.ship, g.term
	sts := append([]*groupStandby(nil), g.standbys...)
	cl.mu.Unlock()
	if live == 0 {
		return // nobody left to promote; the group is down until Restart
	}
	if live < cl.cfg.Replicas/2+1 {
		// Not enough live members to grant the winner a serving lease:
		// majorities count the CONFIGURED group, dead members included,
		// so promoting here would depose a primary that may merely be
		// slow and install one that can never serve. Refuse the election
		// and re-arm the fired detector — a live primary's next
		// heartbeat quiets the alarm, and a truly dead one leaves the
		// group fenced until Restart restores a quorum, which is exactly
		// what CP demands.
		cl.reg.Counter("amoeba_elections_refused_total", obs.L("service", g.name),
			"elections refused (no live quorum, or a sibling still hears the primary)").Inc()
		cl.rearmFiredDetectors(g)
		return
	}
	// Depose the old primary BEFORE choosing a winner. The old shipper
	// — possibly still half-alive on a machine that merely stalled or
	// sits behind a flapping link — could otherwise complete an
	// in-flight batch after the high waters are read: an op acked by
	// {old primary, one standby} in that window would be invisible to
	// the winner pick and destroyed when that standby re-bases onto a
	// lower-High successor. Once Depose returns the fence refuses every
	// later acknowledgement (StatusStale — clients re-locate at once
	// instead of waiting out overload backoffs), so the highest high
	// water read below bounds every acknowledged op.
	if oldShip != nil {
		oldShip.Depose()
	}
	// Quiet the group: the election IS the response to this silence, so
	// every detector stops (winners and peers get fresh ones below),
	// and the old primary's shipper is stopped for good.
	for _, st := range sts {
		if st.det != nil {
			st.det.Stop()
			st.det = nil
		}
	}
	if oldShip != nil {
		oldShip.Stop()
	}
	var win *groupStandby
	for _, st := range sts {
		if st.down {
			continue
		}
		if win == nil || st.recv.High() > win.recv.High() {
			win = st
		}
	}
	if win == nil {
		return
	}
	seq := win.recv.High()
	var dests []cap.Port
	for _, st := range sts {
		if st == win || st.down {
			continue
		}
		dests = append(dests, st.recv.Port())
	}
	// The winner's receiver dies before its kernel serves: a stale
	// primary's ships must bounce off a dead port, not mutate a live
	// service. The new shipper attaches BEFORE Start — its fence is in
	// place from the first request, so there is no unfenced window.
	win.recv.Close()
	ship, err := repl.AttachGroup(win.kern, cl.newShipClient(win.fb), dests, cl.groupShipOptions(oldTerm+1))
	if err != nil {
		stdlog.Printf("amoeba: %s auto-failover: attaching successor shipper: %v", g.name, err)
		return
	}
	cl.addCloser(func() error { ship.Stop(); return nil })
	win.kern.SetReplicaFence(ship.Fence)
	win.kern.SetAdmitGate(ship.Fence)
	if err := win.srv.Start(); err != nil {
		stdlog.Printf("amoeba: %s auto-failover: starting successor: %v", g.name, err)
		ship.Stop()
		return
	}
	cl.mu.Lock()
	g.swap(win, ship)
	g.ship = ship
	g.term = oldTerm + 1
	keep := g.standbys[:0]
	for _, st := range g.standbys {
		if st != win {
			keep = append(keep, st)
		}
	}
	g.standbys = keep
	// The dead machine's log beyond seq is a dead branch of history;
	// Restart re-attaches it as a FRESH standby instead of letting it
	// re-register the port.
	cl.promoted[oldMachine] = promotedAway{service: g.name, seq: seq}
	cl.mu.Unlock()
	cl.reg.Counter("amoeba_failovers_total", obs.L("service", g.name),
		"automatic failovers (standby self-promotions)").Inc()
	stdlog.Printf("amoeba: %s auto-failover: machine %v promoted at seq %d (term %d)",
		g.name, win.machine, seq, oldTerm+1)
	cl.startDetectors(g)
}

// reintegrate attaches one fresh standby to a running group — the
// Restart path for a machine that was killed, or promoted away, or
// whose stream was written off. Caller holds lifeMu.
func (cl *Cluster) reintegrate(g *replGroup) error {
	st, err := cl.buildGroupStandby(g)
	if err != nil {
		return err
	}
	cl.mu.Lock()
	ship := g.ship
	cl.mu.Unlock()
	if ship == nil {
		return fmt.Errorf("amoeba: %s group has no primary to re-integrate with", g.name)
	}
	// AddPeer quiesces the primary, ships the base snapshot, and adds
	// the peer inside the quiesced window — no gap to catch up.
	if err := ship.AddPeer(st.recv.Port()); err != nil {
		return fmt.Errorf("amoeba: re-integrating %s standby: %w", g.name, err)
	}
	cl.mu.Lock()
	g.standbys = append(g.standbys, st)
	cl.mu.Unlock()
	cl.reg.Counter("amoeba_reintegrations_total", obs.L("service", g.name),
		"machines re-attached to a replication group as fresh standbys").Inc()
	cl.startDetectors(g)
	return nil
}

// groupsLocked returns every replication group — the shard-0 pair plus
// one per extra shard (entries may be nil). Caller holds cl.mu.
func (cl *Cluster) groupsLocked() []*replGroup {
	gs := []*replGroup{cl.dirsGroup, cl.bankGroup}
	for _, sh := range cl.dirShards {
		gs = append(gs, sh.group)
	}
	for _, sh := range cl.bankShards {
		gs = append(gs, sh.group)
	}
	return gs
}

// groupOfLocked returns the replication group machine m belongs to and
// its standby record (nil when m is the group's primary). Caller holds
// cl.mu.
func (cl *Cluster) groupOfLocked(m amnet.MachineID) (*replGroup, *groupStandby) {
	for _, g := range cl.groupsLocked() {
		if g == nil {
			continue
		}
		if g.primaryMachine() == m {
			return g, nil
		}
		for _, st := range g.standbys {
			if st.machine == m {
				return g, st
			}
		}
	}
	return nil, nil
}

// groupByNameLocked resolves a service name to its replication group
// (nil when that service is not group-replicated). Caller holds cl.mu.
func (cl *Cluster) groupByNameLocked(name string) *replGroup {
	for _, g := range cl.groupsLocked() {
		if g != nil && g.name == name {
			return g
		}
	}
	return nil
}

// AddBackup attaches a hot standby to the durable service hosted on
// machine m: a fresh machine with its own write-ahead log receives the
// primary's base snapshot and, from then on, every committed record —
// synchronously, before the primary acknowledges the mutation to its
// client. One backup per service; the primary must be up.
func (cl *Cluster) AddBackup(m amnet.MachineID) error {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	cl.mu.Lock()
	if g, _ := cl.groupOfLocked(m); g != nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: the %s replication group manages its own membership; use Kill and Restart", g.name)
	}
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a replicable (durable) service", m)
	}
	if c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server is down; restart or promote first", c.name)
	}
	if c.backup != nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server already has a backup", c.name)
	}
	attach := c.attach
	cl.mu.Unlock()
	return attach()
}

// DropBackup detaches and discards the durable service's hot standby
// (the primary stays up, unreplicated). The recovery verb for a LOST
// stream — a standby that stopped acknowledging is a stale snapshot
// the shipper wrote off — after which AddBackup re-bases a fresh one
// without any availability outage on the primary.
func (cl *Cluster) DropBackup(m amnet.MachineID) error {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	cl.mu.Lock()
	if g, _ := cl.groupOfLocked(m); g != nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: the %s replication group manages its own membership; use Kill and Restart", g.name)
	}
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a replicable (durable) service", m)
	}
	if c.backup == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server has no backup to drop", c.name)
	}
	st, ship := c.backup, c.ship
	c.clearBackup()
	cl.mu.Unlock()
	if ship != nil {
		ship.Stop()
	}
	return st.discard()
}

// Promote fails the durable service hosted on (dead) machine m over to
// its hot standby: the standby's receiver stops, its kernel starts, and
// the service advertises the SAME put-port from the standby's machine —
// clients' stale routes time out, invalidate and re-broadcast LOCATE
// (§2.2), landing on the new incarnation with every acknowledged
// operation intact. The old machine is permanently barred from
// re-registering the port (see Restart's split-brain guard).
//
// The primary must have been Killed first: promoting alongside a live
// primary would put two servers behind one port.
func (cl *Cluster) Promote(m amnet.MachineID) error {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	cl.mu.Lock()
	if g, _ := cl.groupOfLocked(m); g != nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: the %s replication group elects its own primary; nobody calls Promote", g.name)
	}
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a promotable (durable) service", m)
	}
	if c.backup == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server has no backup to promote", c.name)
	}
	if !c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s primary is still up; kill it before promoting (split-brain)", c.name)
	}
	if c.ship != nil && c.ship.Lost() {
		// The stream died before the primary did: the standby is a
		// stale snapshot missing every op acked after the loss —
		// promoting it would contradict those acknowledgements.
		// Restart the primary from its own log instead (its disk has
		// everything), then DropBackup + AddBackup to re-replicate.
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s backup was lost before the crash (stale stream); Restart the primary instead", c.name)
	}
	st, ship := c.backup, c.ship
	c.clearBackup()
	cl.promoted[m] = promotedAway{service: c.name, seq: st.recv.High()}
	cl.mu.Unlock()
	if ship != nil {
		ship.Stop()
	}
	if err := st.promote(); err != nil {
		// The standby failed to take the port: nothing registered it,
		// so the dead machine keeps its right to Restart — un-retire it
		// and discard the broken standby (its receiver may already be
		// closed). The service stays down until Restart.
		_ = st.discard()
		cl.mu.Lock()
		delete(cl.promoted, m)
		cl.mu.Unlock()
		return err
	}
	return nil
}

// Drain gracefully retires the durable service hosted on machine m —
// the planned-maintenance counterpart of Kill. The transport stops
// admitting (new requests are refused with rpc.StatusOverload, which
// clients retry with backoff), every in-flight handler finishes,
// commits, ships to the standby and REPLIES over a NIC that is still
// up; then the final checkpoint runs and the log closes. Only after
// the state is cold do the shipper and the NIC go away.
//
// With a hot standby attached the drain is a zero-downtime handoff:
// the standby holds every acknowledged operation (shipping is
// synchronous), so it immediately takes over the put-port from its own
// machine. Without one, the service stays down until Restart — which
// recovers from the drained WAL, whose final checkpoint makes that
// restart cheap.
func (cl *Cluster) Drain(m amnet.MachineID) error {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	cl.mu.Lock()
	if g, _ := cl.groupOfLocked(m); g != nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: the %s replication group fails over automatically; Kill the machine instead of draining it", g.name)
	}
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a drainable (durable) service", m)
	}
	if c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server already down", c.name)
	}
	c.setDown(true)
	st, ship := c.backup, c.ship
	c.clearBackup()
	cl.mu.Unlock()

	// The reverse of Kill's order: the kernel drains FIRST, while the
	// NIC still carries replies and the shipper still carries commits —
	// in-flight work ends acknowledged on both disks, not severed.
	err := c.drain()
	if ship != nil {
		ship.Stop()
	}
	if cErr := c.fb.Close(); err == nil {
		err = cErr
	}
	if st == nil {
		return err
	}
	// Handoff. The drained machine's log is complete up to this instant,
	// but the successor diverges from its first acknowledged op on — so
	// the old machine is barred from ever re-registering the put-port,
	// exactly as after Promote.
	cl.mu.Lock()
	cl.promoted[m] = promotedAway{service: c.name, seq: st.recv.High()}
	cl.mu.Unlock()
	if pErr := st.promote(); pErr != nil {
		// Nothing took the port; un-retire the machine (its disk is
		// still authoritative) and discard the broken standby. The
		// service stays down until Restart.
		_ = st.discard()
		cl.mu.Lock()
		delete(cl.promoted, m)
		cl.mu.Unlock()
		if err == nil {
			err = pErr
		}
	}
	return err
}

// Kill crashes the service hosted on machine m: the NIC drops off the
// network mid-conversation and the server dies without flushing or
// checkpointing — only what its write-ahead log already committed
// survives. Supported for the durable services (directory and bank).
func (cl *Cluster) Kill(m amnet.MachineID) error {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	cl.mu.Lock()
	// A group STANDBY dies quietly: its detector stops (it must not
	// respond to its own death by electing anyone), the shipper drops
	// the peer — majorities still count the configured group size, so
	// losing standbys never loosens the quorum — and the machine waits
	// for Restart to rejoin. A group PRIMARY falls through to the
	// common path below: NIC, shipper, crash — and the surviving
	// standbys' detectors run the election.
	if g, st := cl.groupOfLocked(m); g != nil && st != nil {
		if st.down {
			cl.mu.Unlock()
			return fmt.Errorf("amoeba: %s standby on machine %v already down", g.name, m)
		}
		st.down = true
		det, ship := st.det, g.ship
		st.det = nil
		cl.mu.Unlock()
		if det != nil {
			det.Stop()
		}
		if ship != nil {
			ship.DropPeer(st.recv.Port())
		}
		err := st.fb.Close()
		if cErr := st.recv.Close(); err == nil {
			err = cErr
		}
		if cErr := st.srv.Crash(); err == nil {
			err = cErr
		}
		return err
	}
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a killable (durable) service", m)
	}
	if c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server already down", c.name)
	}
	c.setDown(true)
	cl.mu.Unlock()
	// The NIC goes FIRST — a crash cuts the machine off mid-
	// conversation; in-flight replies vanish and clients retry. The
	// order against the shipper matters: were the stream stopped while
	// the NIC still carried replies, an in-flight handler could commit
	// locally, skip the (stopped) ship, and still acknowledge its
	// client — an acked op the standby never saw, lost at promotion.
	// With the NIC down, any op whose ship was cut off can no longer
	// reach its client either, so "acknowledged" still implies "on the
	// standby".
	err := c.fb.Close()
	// Then the shipper dies with its machine: aborting any in-flight
	// ship attempt unwedges handlers blocked on replication acks so the
	// crash drains. The standby stays alive and based — ready for
	// Promote.
	if c.ship != nil {
		c.ship.Stop()
	}
	if cerr := c.crash(); err == nil {
		err = cerr
	}
	return err
}

// Restart re-incarnates a killed service on a FRESH machine: the new
// server recovers its state from the write-ahead log (same disk, same
// get-port, new machine ID). Clients' cached locations go stale; their
// next transaction times out, invalidates the cache entry and
// re-broadcasts LOCATE — §2.2's discovery path for a moved server —
// which the new incarnation answers.
func (cl *Cluster) Restart(m amnet.MachineID) error {
	cl.lifeMu.Lock()
	defer cl.lifeMu.Unlock()
	// Clearing the down flag under the lock claims the restart: a
	// concurrent Restart of the same service sees "not down" and
	// fails, so two incarnations can never share one WAL disk.
	cl.mu.Lock()
	// The split-brain guard: a machine whose put-port was promoted away
	// may NEVER re-register it. Its WAL disk is a dead branch of
	// history — the promoted incarnation has acknowledged operations
	// this machine's log never saw — and a second server behind the
	// port would split clients between two divergent states. In group
	// mode that is not a dead end: the machine rejoins as a FRESH
	// standby (new disk, base snapshot from the current primary), its
	// old log discarded.
	if pa, was := cl.promoted[m]; was {
		if g := cl.groupByNameLocked(pa.service); g != nil {
			delete(cl.promoted, m)
			cl.mu.Unlock()
			stdlog.Printf("amoeba: machine %v rejoining the %s group as a fresh standby; its log beyond seq %d is discarded",
				m, pa.service, pa.seq)
			if err := cl.reintegrate(g); err != nil {
				cl.mu.Lock()
				cl.promoted[m] = pa // the machine stays retired
				cl.mu.Unlock()
				return err
			}
			return nil
		}
		cl.mu.Unlock()
		cl.reg.Counter("amoeba_restart_refused_total", obs.L("service", pa.service),
			"restarts refused by the split-brain guard").Inc()
		stdlog.Printf("amoeba: refusing restart of machine %v: %s put-port promoted away; its log beyond seq %d is a dead branch",
			m, pa.service, pa.seq)
		return &PromotedAwayError{Machine: m, Service: pa.service, DiscardedSeq: pa.seq}
	}
	// Group membership: a killed standby rejoins as a fresh standby; a
	// killed primary must wait for the survivors' election to finish
	// (after which this machine lands in the promoted map above).
	if g, st := cl.groupOfLocked(m); g != nil {
		if st == nil {
			cl.mu.Unlock()
			return fmt.Errorf("amoeba: machine %v is the %s group primary; wait for auto-failover, then Restart re-attaches it", m, g.name)
		}
		if !st.down {
			cl.mu.Unlock()
			return fmt.Errorf("amoeba: %s standby on machine %v is not down", g.name, m)
		}
		keep := g.standbys[:0]
		for _, s := range g.standbys {
			if s != st {
				keep = append(keep, s)
			}
		}
		g.standbys = keep
		cl.mu.Unlock()
		return cl.reintegrate(g)
	}
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a restartable (durable) service", m)
	}
	if !c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server is not down", c.name)
	}
	c.setDown(false)
	// Restart, not Promote, wins this outage: the stale standby's
	// stream died with the primary's shipper, so it is discarded here —
	// AddBackup re-bases a fresh one from the restarted primary.
	st, ship := c.backup, c.ship
	c.clearBackup()
	cl.mu.Unlock()
	if ship != nil {
		ship.Stop()
	}
	if st != nil {
		_ = st.discard()
	}
	if err := c.restart(); err != nil {
		cl.mu.Lock()
		c.setDown(true)
		cl.mu.Unlock()
		return err
	}
	return nil
}

func (cl *Cluster) newFBox() (*fbox.FBox, error) {
	nic, err := cl.net.Attach()
	if err != nil {
		return nil, fmt.Errorf("amoeba: attaching machine: %w", err)
	}
	fb := fbox.New(nic, nil)
	cl.addCloser(fb.Close)
	return fb, nil
}

func (cl *Cluster) addCloser(f func() error) {
	cl.closersMu.Lock()
	cl.closers = append(cl.closers, f)
	cl.closersMu.Unlock()
}

func (cl *Cluster) newRPCClient(fb *fbox.FBox) *rpc.Client {
	res := locate.New(fb, locate.Config{Atlas: cl.atlas})
	return rpc.NewClient(fb, res, rpc.ClientConfig{
		Source: cl.src,
		Sealer: cl.sealerFor(fb),
	})
}

// sealerFor returns the machine's key-matrix guard, or nil when
// sealing is off.
func (cl *Cluster) sealerFor(fb *fbox.FBox) rpc.CapSealer {
	if cl.matrix == nil {
		return nil
	}
	return cl.matrix.DynamicGuard(fb.Machine(), nil)
}

// sealServer installs a guard on a service server when sealing is on.
func (cl *Cluster) sealServer(fb *fbox.FBox, set func(rpc.CapSealer)) {
	if s := cl.sealerFor(fb); s != nil {
		set(s)
	}
}

func (cl *Cluster) start(start func() error, close func() error) error {
	if err := start(); err != nil {
		return err
	}
	cl.addCloser(close)
	return nil
}

// Close shuts every server and machine down.
func (cl *Cluster) Close() error {
	// Quiet the failure detectors before tearing anything down: closing
	// the receivers below looks exactly like a dead primary, and a
	// detector that fires mid-teardown would run an election over closed
	// resources. The flag catches fires already in flight (queued on
	// lifeMu); the Stops catch future ones. Taking lifeMu first lets any
	// election already running finish on live resources.
	cl.closing.Store(true)
	cl.lifeMu.Lock()
	cl.mu.Lock()
	groups := cl.groupsLocked()
	cl.mu.Unlock()
	for _, g := range groups {
		if g == nil {
			continue
		}
		cl.mu.Lock()
		sts := append([]*groupStandby(nil), g.standbys...)
		cl.mu.Unlock()
		for _, st := range sts {
			if st.det != nil {
				st.det.Stop()
				st.det = nil
			}
		}
	}
	cl.lifeMu.Unlock()
	cl.closersMu.Lock()
	closers := cl.closers
	cl.closers = nil
	cl.closersMu.Unlock()
	var firstErr error
	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := cl.net.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Memory returns a typed client for the memory server (§3.1).
func (cl *Cluster) Memory() *memsvr.Client {
	return memsvr.NewClient(cl.client, cl.memory.PutPort())
}

// Blocks returns a typed client for the block server (§3.2).
func (cl *Cluster) Blocks() *blocksvr.Client {
	return blocksvr.NewClient(cl.client, cl.blocks.PutPort())
}

// Files returns a typed client for the flat file server (§3.3).
func (cl *Cluster) Files() *flatfs.Client {
	return flatfs.NewClient(cl.client, cl.files.PutPort())
}

// FilesFor binds a flat-file client to a different RPC client (one
// obtained from NewMachine) — a second user process with its own
// machine, reply ports and locate cache.
func (cl *Cluster) FilesFor(c *rpc.Client) *flatfs.Client {
	return flatfs.NewClient(c, cl.files.PutPort())
}

// Dirs returns a typed client for directory services (§3.4). With
// ClusterConfig.LookupLease set, the client serves lookups from the
// cluster-wide lease cache — reads under an unexpired lease cost zero
// RPCs (see package lease for the staleness contract).
func (cl *Cluster) Dirs() *dirsvr.Client {
	if cl.lookupCache != nil {
		return dirsvr.NewCachingClient(cl.client, cl.lookupCache)
	}
	return dirsvr.NewClient(cl.client)
}

// DirPort returns the directory server's put-port (CreateDir needs a
// server to create the directory on).
// The put-port is pinned across Kill/Restart (the get-port is
// persisted with the log), so a cached DirPort stays valid over a
// crash.
func (cl *Cluster) DirPort() Port {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.dirs.PutPort()
}

// Versions returns a typed client for the multiversion file server
// (§3.5).
func (cl *Cluster) Versions() *mvfs.Client {
	return mvfs.NewClient(cl.client, cl.multi.PutPort())
}

// Bank returns a typed client for the bank server (§3.6).
func (cl *Cluster) Bank() *banksvr.Client {
	cl.mu.Lock()
	port := cl.bank.PutPort()
	cl.mu.Unlock()
	return banksvr.NewClient(cl.client, port)
}

// NewUnixFS creates a fresh root directory and returns a UNIX-like
// view over it (the paper's third file system). The context bounds
// the root-directory creation transaction only.
func (cl *Cluster) NewUnixFS(ctx context.Context) (*unixfs.FS, error) {
	dirs := cl.Dirs()
	root, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		return nil, err
	}
	return unixfs.New(dirs, cl.Files(), root), nil
}

// RPC returns the cluster's default client for raw transactions.
func (cl *Cluster) RPC() *rpc.Client { return cl.client }

// NewMachine attaches a fresh machine (its own F-box and RPC client) —
// a second user workstation, an intruder host, a server host for
// custom services.
func (cl *Cluster) NewMachine() (*fbox.FBox, *rpc.Client, error) {
	fb, err := cl.newFBox()
	if err != nil {
		return nil, nil, err
	}
	return fb, cl.newRPCClient(fb), nil
}

// Tap attaches a passive wiretap to the cluster network (the §2.4
// intruder's capture capability).
func (cl *Cluster) Tap() (*amnet.Tap, error) { return cl.net.Tap() }

// Net exposes the simulated network (partitions, stats).
func (cl *Cluster) Net() *amnet.SimNet { return cl.net }

// ErrNoCluster is returned by helpers that need a running cluster.
var ErrNoCluster = errors.New("amoeba: cluster not running")
