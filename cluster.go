package amoeba

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
	"amoeba/internal/server/banksvr"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/flatfs"
	"amoeba/internal/server/memsvr"
	"amoeba/internal/server/mvfs"
	"amoeba/internal/server/unixfs"
	"amoeba/internal/vdisk"
	"amoeba/internal/wal"
)

// ClusterConfig configures a simulated Amoeba cluster. The zero value
// starts every service with scheme 2 (one-way functions, the scheme
// production Amoeba used) on a perfect network.
type ClusterConfig struct {
	// Scheme selects the rights-protection algorithm for all services
	// (default SchemeOneWay).
	Scheme SchemeID
	// Seed makes the cluster deterministic; 0 draws from crypto/rand.
	Seed uint64
	// Latency, Jitter, LossRate, Duplicate and Reorder shape the
	// simulated network (see amnet.SimConfig); the fault knobs drive
	// the chaos tests.
	Latency   time.Duration
	Jitter    time.Duration
	LossRate  float64
	Duplicate float64
	Reorder   float64
	// MaxInflight bounds each service's worker pool (0 = the
	// rpc.DefaultMaxInflight default). See rpc.ServerConfig.
	MaxInflight int
	// DiskBlocks and DiskBlockSize set the block server's geometry
	// (defaults: 4096 × 1 KiB).
	DiskBlocks    uint32
	DiskBlockSize int
	// Bank sets the bank server's policy (default: minting allowed,
	// dollar/franc convertible at 5 francs per dollar).
	Bank *banksvr.Config
	// SealCapabilities additionally protects every capability in
	// flight with the §2.4 key matrix: request and reply capability
	// fields are encrypted under per-(source, destination) keys. This
	// composes with the F-box protection; a wiretap then sees only
	// ciphertext capabilities. See EXPERIMENTS.md E8.
	SealCapabilities bool
}

// Cluster is a complete single-process Amoeba system on a simulated
// network: one machine per service plus one client machine. It exists
// so examples, tests and experiments can stand a whole system up in a
// few milliseconds; the services themselves are the same code a TCP
// deployment runs.
//
// The directory and bank servers — the two services whose loss would
// strand capabilities or bend the money supply — run durable: their
// mutations are written ahead to per-service logs on simulated stable
// storage, so Kill and Restart model a machine crash the cluster
// actually recovers from.
type Cluster struct {
	net    *amnet.SimNet
	src    crypto.Source
	scheme cap.Scheme
	cfg    ClusterConfig

	client   *rpc.Client
	clientFB *fbox.FBox

	memory *memsvr.Server
	blocks *blocksvr.Server
	files  *flatfs.Server
	disk   *vdisk.Disk

	// matrix is non-nil when SealCapabilities is on.
	matrix *keymatrix.Matrix

	closersMu sync.Mutex
	closers   []func() error

	// mu guards the fields Kill/Restart swap out: the durable servers,
	// their F-boxes, and the machine map.
	mu       sync.Mutex
	dirs     *dirsvr.Server
	multi    *mvfs.Server
	bank     *banksvr.Server
	dirsFB   *fbox.FBox
	bankFB   *fbox.FBox
	dirsDown bool
	bankDown bool
	machines Machines

	// Stable storage and identity the durable services carry across
	// Kill/Restart: the WAL disks survive the crash (they model the
	// machine's disk), and the get-ports pin the servers' put-ports.
	dirsWAL *vdisk.Disk
	bankWAL *vdisk.Disk
	dirsG   cap.Port
	bankG   cap.Port
}

// Machines identifies the cluster's machines on the simulated
// network, for partitioning experiments (SimNet.Partition/Heal).
type Machines struct {
	Client   amnet.MachineID
	Memory   amnet.MachineID
	Blocks   amnet.MachineID
	Files    amnet.MachineID
	Dirs     amnet.MachineID
	Versions amnet.MachineID
	Bank     amnet.MachineID
}

// Machines returns the machine IDs of the cluster's client and
// service hosts. A restarted service reappears on a NEW machine (a
// re-incarnation elsewhere on the LAN) — re-read after Restart.
func (cl *Cluster) Machines() Machines {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.machines
}

// NewCluster boots a cluster with every §3 service running.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Scheme == 0 {
		cfg.Scheme = SchemeOneWay
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 4096
	}
	if cfg.DiskBlockSize == 0 {
		cfg.DiskBlockSize = 1024
	}
	scheme, err := cap.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	var src crypto.Source
	if cfg.Seed != 0 {
		src = crypto.NewSeededSource(cfg.Seed)
	} else {
		src = crypto.SystemSource()
	}

	cl := &Cluster{
		net: amnet.NewSimNet(amnet.SimConfig{
			Latency:   cfg.Latency,
			Jitter:    cfg.Jitter,
			LossRate:  cfg.LossRate,
			Duplicate: cfg.Duplicate,
			Reorder:   cfg.Reorder,
			Seed:      cfg.Seed,
		}),
		src:    src,
		scheme: scheme,
		cfg:    cfg,
	}
	if cfg.SealCapabilities {
		cl.matrix = keymatrix.NewMatrix(src)
	}
	ok := false
	defer func() {
		if !ok {
			cl.Close()
		}
	}()

	// Client machine.
	cl.clientFB, err = cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.client = cl.newRPCClient(cl.clientFB)
	cl.machines.Client = cl.clientFB.Machine()

	// Memory server.
	memFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Memory = memFB.Machine()
	cl.memory = memsvr.New(memFB, scheme, src)
	cl.memory.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(memFB, cl.memory.SetSealer)
	if err := cl.start(cl.memory.Start, cl.memory.Close); err != nil {
		return nil, err
	}

	// Block server.
	cl.disk, err = vdisk.New(cfg.DiskBlocks, cfg.DiskBlockSize)
	if err != nil {
		return nil, err
	}
	blkFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Blocks = blkFB.Machine()
	cl.blocks, err = blocksvr.New(blkFB, scheme, src, cl.disk)
	if err != nil {
		return nil, err
	}
	cl.blocks.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(blkFB, cl.blocks.SetSealer)
	if err := cl.start(cl.blocks.Start, cl.blocks.Close); err != nil {
		return nil, err
	}

	// Flat file server (a client of the block server, from its own
	// machine).
	fileFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	fileRPC := cl.newRPCClient(fileFB)
	cl.machines.Files = fileFB.Machine()
	cl.files, err = flatfs.New(context.Background(), fileFB, scheme, src, blocksvr.NewClient(fileRPC, cl.blocks.PutPort()))
	if err != nil {
		return nil, err
	}
	cl.files.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(fileFB, cl.files.SetSealer)
	if err := cl.start(cl.files.Start, cl.files.Close); err != nil {
		return nil, err
	}

	// Directory server — durable: its write-ahead log lives on a
	// dedicated simulated disk that survives Kill/Restart, and its
	// get-port is pinned so the reincarnation answers at the same
	// put-port every directory capability names.
	if cl.dirsWAL, err = vdisk.New(walBlocks, walBlockSize); err != nil {
		return nil, err
	}
	cl.dirsG = cap.Port(crypto.Rand48(src))
	if err := cl.startDirsvr(); err != nil {
		return nil, err
	}

	// Multiversion file server.
	mvFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Versions = mvFB.Machine()
	cl.multi = mvfs.New(mvFB, scheme, src)
	cl.multi.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(mvFB, cl.multi.SetSealer)
	if err := cl.start(cl.multi.Start, cl.multi.Close); err != nil {
		return nil, err
	}

	// Bank server — durable, like the directory server: money must
	// survive the machine.
	if cl.bankWAL, err = vdisk.New(walBlocks, walBlockSize); err != nil {
		return nil, err
	}
	cl.bankG = cap.Port(crypto.Rand48(src))
	if err := cl.startBanksvr(); err != nil {
		return nil, err
	}

	ok = true
	return cl, nil
}

// WAL geometry for the durable services' simulated disks: 2048 × 512 B
// (1 MiB) per service, checkpoint-compacted at half full.
const (
	walBlocks    = 2048
	walBlockSize = 512
)

// startDirsvr boots a directory server incarnation over the cluster's
// WAL disk; NewCluster and Restart share it.
func (cl *Cluster) startDirsvr() error {
	fb, err := cl.newFBox()
	if err != nil {
		return err
	}
	log, err := wal.Open(cl.dirsWAL, wal.Options{})
	if err != nil {
		return err
	}
	s, err := dirsvr.NewDurable(fb, cl.scheme, cl.src, log, cl.dirsG)
	if err != nil {
		log.Close() // the kernel never took ownership
		return err
	}
	s.SetMaxInflight(cl.cfg.MaxInflight)
	cl.sealServer(fb, s.SetSealer)
	if err := cl.start(s.Start, s.Close); err != nil {
		s.Close() // closes the log; a Restart retry reopens it
		return err
	}
	cl.mu.Lock()
	cl.dirs, cl.dirsFB, cl.machines.Dirs, cl.dirsDown = s, fb, fb.Machine(), false
	cl.mu.Unlock()
	return nil
}

// bankConfig resolves the bank policy (stable across restarts).
func (cl *Cluster) bankConfig() banksvr.Config {
	if cl.cfg.Bank != nil {
		return *cl.cfg.Bank
	}
	return banksvr.Config{
		MintingAllowed: true,
		Rates: map[[2]string]banksvr.Rate{
			{"dollar", "franc"}: {Num: 5, Den: 1},
			{"franc", "dollar"}: {Num: 1, Den: 5},
		},
	}
}

// startBanksvr boots a bank server incarnation over the cluster's WAL
// disk; NewCluster and Restart share it.
func (cl *Cluster) startBanksvr() error {
	fb, err := cl.newFBox()
	if err != nil {
		return err
	}
	log, err := wal.Open(cl.bankWAL, wal.Options{})
	if err != nil {
		return err
	}
	s, err := banksvr.NewDurable(fb, cl.scheme, cl.src, cl.bankConfig(), log, cl.bankG)
	if err != nil {
		log.Close() // the kernel never took ownership
		return err
	}
	s.SetMaxInflight(cl.cfg.MaxInflight)
	cl.sealServer(fb, s.SetSealer)
	if err := cl.start(s.Start, s.Close); err != nil {
		s.Close() // closes the log; a Restart retry reopens it
		return err
	}
	cl.mu.Lock()
	cl.bank, cl.bankFB, cl.machines.Bank, cl.bankDown = s, fb, fb.Machine(), false
	cl.mu.Unlock()
	return nil
}

// durableCtl is the per-service control surface Kill and Restart share
// — one place that knows which cluster fields belong to which durable
// service. Build it (and call setDown) under cl.mu.
type durableCtl struct {
	name    string
	fb      *fbox.FBox
	crash   func() error
	down    bool
	setDown func(bool)
	restart func() error
}

func (cl *Cluster) durableCtlLocked(m amnet.MachineID) *durableCtl {
	switch m {
	case cl.machines.Dirs:
		return &durableCtl{
			name: "directory", fb: cl.dirsFB, crash: cl.dirs.Crash, down: cl.dirsDown,
			setDown: func(v bool) { cl.dirsDown = v }, restart: cl.startDirsvr,
		}
	case cl.machines.Bank:
		return &durableCtl{
			name: "bank", fb: cl.bankFB, crash: cl.bank.Crash, down: cl.bankDown,
			setDown: func(v bool) { cl.bankDown = v }, restart: cl.startBanksvr,
		}
	}
	return nil
}

// Kill crashes the service hosted on machine m: the NIC drops off the
// network mid-conversation and the server dies without flushing or
// checkpointing — only what its write-ahead log already committed
// survives. Supported for the durable services (directory and bank).
func (cl *Cluster) Kill(m amnet.MachineID) error {
	cl.mu.Lock()
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a killable (durable) service", m)
	}
	if c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server already down", c.name)
	}
	c.setDown(true)
	cl.mu.Unlock()
	// The NIC goes first — a crash cuts the machine off mid-
	// conversation; in-flight replies vanish and clients retry.
	err := c.fb.Close()
	if cerr := c.crash(); err == nil {
		err = cerr
	}
	return err
}

// Restart re-incarnates a killed service on a FRESH machine: the new
// server recovers its state from the write-ahead log (same disk, same
// get-port, new machine ID). Clients' cached locations go stale; their
// next transaction times out, invalidates the cache entry and
// re-broadcasts LOCATE — §2.2's discovery path for a moved server —
// which the new incarnation answers.
func (cl *Cluster) Restart(m amnet.MachineID) error {
	// Clearing the down flag under the lock claims the restart: a
	// concurrent Restart of the same service sees "not down" and
	// fails, so two incarnations can never share one WAL disk.
	cl.mu.Lock()
	c := cl.durableCtlLocked(m)
	if c == nil {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: machine %v does not host a restartable (durable) service", m)
	}
	if !c.down {
		cl.mu.Unlock()
		return fmt.Errorf("amoeba: %s server is not down", c.name)
	}
	c.setDown(false)
	cl.mu.Unlock()
	if err := c.restart(); err != nil {
		cl.mu.Lock()
		c.setDown(true)
		cl.mu.Unlock()
		return err
	}
	return nil
}

func (cl *Cluster) newFBox() (*fbox.FBox, error) {
	nic, err := cl.net.Attach()
	if err != nil {
		return nil, fmt.Errorf("amoeba: attaching machine: %w", err)
	}
	fb := fbox.New(nic, nil)
	cl.addCloser(fb.Close)
	return fb, nil
}

func (cl *Cluster) addCloser(f func() error) {
	cl.closersMu.Lock()
	cl.closers = append(cl.closers, f)
	cl.closersMu.Unlock()
}

func (cl *Cluster) newRPCClient(fb *fbox.FBox) *rpc.Client {
	res := locate.New(fb, locate.Config{})
	return rpc.NewClient(fb, res, rpc.ClientConfig{
		Source: cl.src,
		Sealer: cl.sealerFor(fb),
	})
}

// sealerFor returns the machine's key-matrix guard, or nil when
// sealing is off.
func (cl *Cluster) sealerFor(fb *fbox.FBox) rpc.CapSealer {
	if cl.matrix == nil {
		return nil
	}
	return cl.matrix.DynamicGuard(fb.Machine(), nil)
}

// sealServer installs a guard on a service server when sealing is on.
func (cl *Cluster) sealServer(fb *fbox.FBox, set func(rpc.CapSealer)) {
	if s := cl.sealerFor(fb); s != nil {
		set(s)
	}
}

func (cl *Cluster) start(start func() error, close func() error) error {
	if err := start(); err != nil {
		return err
	}
	cl.addCloser(close)
	return nil
}

// Close shuts every server and machine down.
func (cl *Cluster) Close() error {
	cl.closersMu.Lock()
	closers := cl.closers
	cl.closers = nil
	cl.closersMu.Unlock()
	var firstErr error
	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := cl.net.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Memory returns a typed client for the memory server (§3.1).
func (cl *Cluster) Memory() *memsvr.Client {
	return memsvr.NewClient(cl.client, cl.memory.PutPort())
}

// Blocks returns a typed client for the block server (§3.2).
func (cl *Cluster) Blocks() *blocksvr.Client {
	return blocksvr.NewClient(cl.client, cl.blocks.PutPort())
}

// Files returns a typed client for the flat file server (§3.3).
func (cl *Cluster) Files() *flatfs.Client {
	return flatfs.NewClient(cl.client, cl.files.PutPort())
}

// FilesFor binds a flat-file client to a different RPC client (one
// obtained from NewMachine) — a second user process with its own
// machine, reply ports and locate cache.
func (cl *Cluster) FilesFor(c *rpc.Client) *flatfs.Client {
	return flatfs.NewClient(c, cl.files.PutPort())
}

// Dirs returns a typed client for directory services (§3.4).
func (cl *Cluster) Dirs() *dirsvr.Client {
	return dirsvr.NewClient(cl.client)
}

// DirPort returns the directory server's put-port (CreateDir needs a
// server to create the directory on).
// The put-port is pinned across Kill/Restart (the get-port is
// persisted with the log), so a cached DirPort stays valid over a
// crash.
func (cl *Cluster) DirPort() Port {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.dirs.PutPort()
}

// Versions returns a typed client for the multiversion file server
// (§3.5).
func (cl *Cluster) Versions() *mvfs.Client {
	return mvfs.NewClient(cl.client, cl.multi.PutPort())
}

// Bank returns a typed client for the bank server (§3.6).
func (cl *Cluster) Bank() *banksvr.Client {
	cl.mu.Lock()
	port := cl.bank.PutPort()
	cl.mu.Unlock()
	return banksvr.NewClient(cl.client, port)
}

// NewUnixFS creates a fresh root directory and returns a UNIX-like
// view over it (the paper's third file system). The context bounds
// the root-directory creation transaction only.
func (cl *Cluster) NewUnixFS(ctx context.Context) (*unixfs.FS, error) {
	dirs := cl.Dirs()
	root, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		return nil, err
	}
	return unixfs.New(dirs, cl.Files(), root), nil
}

// RPC returns the cluster's default client for raw transactions.
func (cl *Cluster) RPC() *rpc.Client { return cl.client }

// NewMachine attaches a fresh machine (its own F-box and RPC client) —
// a second user workstation, an intruder host, a server host for
// custom services.
func (cl *Cluster) NewMachine() (*fbox.FBox, *rpc.Client, error) {
	fb, err := cl.newFBox()
	if err != nil {
		return nil, nil, err
	}
	return fb, cl.newRPCClient(fb), nil
}

// Tap attaches a passive wiretap to the cluster network (the §2.4
// intruder's capture capability).
func (cl *Cluster) Tap() (*amnet.Tap, error) { return cl.net.Tap() }

// Net exposes the simulated network (partitions, stats).
func (cl *Cluster) Net() *amnet.SimNet { return cl.net }

// ErrNoCluster is returned by helpers that need a running cluster.
var ErrNoCluster = errors.New("amoeba: cluster not running")
