package amoeba

import (
	"context"
	"errors"
	"fmt"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
	"amoeba/internal/server/banksvr"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/flatfs"
	"amoeba/internal/server/memsvr"
	"amoeba/internal/server/mvfs"
	"amoeba/internal/server/unixfs"
	"amoeba/internal/vdisk"
)

// ClusterConfig configures a simulated Amoeba cluster. The zero value
// starts every service with scheme 2 (one-way functions, the scheme
// production Amoeba used) on a perfect network.
type ClusterConfig struct {
	// Scheme selects the rights-protection algorithm for all services
	// (default SchemeOneWay).
	Scheme SchemeID
	// Seed makes the cluster deterministic; 0 draws from crypto/rand.
	Seed uint64
	// Latency, Jitter, LossRate, Duplicate and Reorder shape the
	// simulated network (see amnet.SimConfig); the fault knobs drive
	// the chaos tests.
	Latency   time.Duration
	Jitter    time.Duration
	LossRate  float64
	Duplicate float64
	Reorder   float64
	// MaxInflight bounds each service's worker pool (0 = the
	// rpc.DefaultMaxInflight default). See rpc.ServerConfig.
	MaxInflight int
	// DiskBlocks and DiskBlockSize set the block server's geometry
	// (defaults: 4096 × 1 KiB).
	DiskBlocks    uint32
	DiskBlockSize int
	// Bank sets the bank server's policy (default: minting allowed,
	// dollar/franc convertible at 5 francs per dollar).
	Bank *banksvr.Config
	// SealCapabilities additionally protects every capability in
	// flight with the §2.4 key matrix: request and reply capability
	// fields are encrypted under per-(source, destination) keys. This
	// composes with the F-box protection; a wiretap then sees only
	// ciphertext capabilities. See EXPERIMENTS.md E8.
	SealCapabilities bool
}

// Cluster is a complete single-process Amoeba system on a simulated
// network: one machine per service plus one client machine. It exists
// so examples, tests and experiments can stand a whole system up in a
// few milliseconds; the services themselves are the same code a TCP
// deployment runs.
type Cluster struct {
	net *amnet.SimNet
	src crypto.Source

	client   *rpc.Client
	clientFB *fbox.FBox

	memory *memsvr.Server
	blocks *blocksvr.Server
	files  *flatfs.Server
	dirs   *dirsvr.Server
	multi  *mvfs.Server
	bank   *banksvr.Server
	disk   *vdisk.Disk

	// matrix is non-nil when SealCapabilities is on.
	matrix *keymatrix.Matrix

	machines Machines
	closers  []func() error
}

// Machines identifies the cluster's machines on the simulated
// network, for partitioning experiments (SimNet.Partition/Heal).
type Machines struct {
	Client   amnet.MachineID
	Memory   amnet.MachineID
	Blocks   amnet.MachineID
	Files    amnet.MachineID
	Dirs     amnet.MachineID
	Versions amnet.MachineID
	Bank     amnet.MachineID
}

// Machines returns the machine IDs of the cluster's client and
// service hosts.
func (cl *Cluster) Machines() Machines { return cl.machines }

// NewCluster boots a cluster with every §3 service running.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Scheme == 0 {
		cfg.Scheme = SchemeOneWay
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 4096
	}
	if cfg.DiskBlockSize == 0 {
		cfg.DiskBlockSize = 1024
	}
	scheme, err := cap.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	var src crypto.Source
	if cfg.Seed != 0 {
		src = crypto.NewSeededSource(cfg.Seed)
	} else {
		src = crypto.SystemSource()
	}

	cl := &Cluster{
		net: amnet.NewSimNet(amnet.SimConfig{
			Latency:   cfg.Latency,
			Jitter:    cfg.Jitter,
			LossRate:  cfg.LossRate,
			Duplicate: cfg.Duplicate,
			Reorder:   cfg.Reorder,
			Seed:      cfg.Seed,
		}),
		src: src,
	}
	if cfg.SealCapabilities {
		cl.matrix = keymatrix.NewMatrix(src)
	}
	ok := false
	defer func() {
		if !ok {
			cl.Close()
		}
	}()

	// Client machine.
	cl.clientFB, err = cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.client = cl.newRPCClient(cl.clientFB)
	cl.machines.Client = cl.clientFB.Machine()

	// Memory server.
	memFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Memory = memFB.Machine()
	cl.memory = memsvr.New(memFB, scheme, src)
	cl.memory.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(memFB, cl.memory.SetSealer)
	if err := cl.start(cl.memory.Start, cl.memory.Close); err != nil {
		return nil, err
	}

	// Block server.
	cl.disk, err = vdisk.New(cfg.DiskBlocks, cfg.DiskBlockSize)
	if err != nil {
		return nil, err
	}
	blkFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Blocks = blkFB.Machine()
	cl.blocks, err = blocksvr.New(blkFB, scheme, src, cl.disk)
	if err != nil {
		return nil, err
	}
	cl.blocks.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(blkFB, cl.blocks.SetSealer)
	if err := cl.start(cl.blocks.Start, cl.blocks.Close); err != nil {
		return nil, err
	}

	// Flat file server (a client of the block server, from its own
	// machine).
	fileFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	fileRPC := cl.newRPCClient(fileFB)
	cl.machines.Files = fileFB.Machine()
	cl.files, err = flatfs.New(context.Background(), fileFB, scheme, src, blocksvr.NewClient(fileRPC, cl.blocks.PutPort()))
	if err != nil {
		return nil, err
	}
	cl.files.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(fileFB, cl.files.SetSealer)
	if err := cl.start(cl.files.Start, cl.files.Close); err != nil {
		return nil, err
	}

	// Directory server.
	dirFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Dirs = dirFB.Machine()
	cl.dirs = dirsvr.New(dirFB, scheme, src)
	cl.dirs.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(dirFB, cl.dirs.SetSealer)
	if err := cl.start(cl.dirs.Start, cl.dirs.Close); err != nil {
		return nil, err
	}

	// Multiversion file server.
	mvFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Versions = mvFB.Machine()
	cl.multi = mvfs.New(mvFB, scheme, src)
	cl.multi.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(mvFB, cl.multi.SetSealer)
	if err := cl.start(cl.multi.Start, cl.multi.Close); err != nil {
		return nil, err
	}

	// Bank server.
	bankCfg := banksvr.Config{
		MintingAllowed: true,
		Rates: map[[2]string]banksvr.Rate{
			{"dollar", "franc"}: {Num: 5, Den: 1},
			{"franc", "dollar"}: {Num: 1, Den: 5},
		},
	}
	if cfg.Bank != nil {
		bankCfg = *cfg.Bank
	}
	bankFB, err := cl.newFBox()
	if err != nil {
		return nil, err
	}
	cl.machines.Bank = bankFB.Machine()
	cl.bank = banksvr.New(bankFB, scheme, src, bankCfg)
	cl.bank.SetMaxInflight(cfg.MaxInflight)
	cl.sealServer(bankFB, cl.bank.SetSealer)
	if err := cl.start(cl.bank.Start, cl.bank.Close); err != nil {
		return nil, err
	}

	ok = true
	return cl, nil
}

func (cl *Cluster) newFBox() (*fbox.FBox, error) {
	nic, err := cl.net.Attach()
	if err != nil {
		return nil, fmt.Errorf("amoeba: attaching machine: %w", err)
	}
	fb := fbox.New(nic, nil)
	cl.closers = append(cl.closers, fb.Close)
	return fb, nil
}

func (cl *Cluster) newRPCClient(fb *fbox.FBox) *rpc.Client {
	res := locate.New(fb, locate.Config{})
	return rpc.NewClient(fb, res, rpc.ClientConfig{
		Source: cl.src,
		Sealer: cl.sealerFor(fb),
	})
}

// sealerFor returns the machine's key-matrix guard, or nil when
// sealing is off.
func (cl *Cluster) sealerFor(fb *fbox.FBox) rpc.CapSealer {
	if cl.matrix == nil {
		return nil
	}
	return cl.matrix.DynamicGuard(fb.Machine(), nil)
}

// sealServer installs a guard on a service server when sealing is on.
func (cl *Cluster) sealServer(fb *fbox.FBox, set func(rpc.CapSealer)) {
	if s := cl.sealerFor(fb); s != nil {
		set(s)
	}
}

func (cl *Cluster) start(start func() error, close func() error) error {
	if err := start(); err != nil {
		return err
	}
	cl.closers = append(cl.closers, close)
	return nil
}

// Close shuts every server and machine down.
func (cl *Cluster) Close() error {
	var firstErr error
	for i := len(cl.closers) - 1; i >= 0; i-- {
		if err := cl.closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	cl.closers = nil
	if err := cl.net.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Memory returns a typed client for the memory server (§3.1).
func (cl *Cluster) Memory() *memsvr.Client {
	return memsvr.NewClient(cl.client, cl.memory.PutPort())
}

// Blocks returns a typed client for the block server (§3.2).
func (cl *Cluster) Blocks() *blocksvr.Client {
	return blocksvr.NewClient(cl.client, cl.blocks.PutPort())
}

// Files returns a typed client for the flat file server (§3.3).
func (cl *Cluster) Files() *flatfs.Client {
	return flatfs.NewClient(cl.client, cl.files.PutPort())
}

// FilesFor binds a flat-file client to a different RPC client (one
// obtained from NewMachine) — a second user process with its own
// machine, reply ports and locate cache.
func (cl *Cluster) FilesFor(c *rpc.Client) *flatfs.Client {
	return flatfs.NewClient(c, cl.files.PutPort())
}

// Dirs returns a typed client for directory services (§3.4).
func (cl *Cluster) Dirs() *dirsvr.Client {
	return dirsvr.NewClient(cl.client)
}

// DirPort returns the directory server's put-port (CreateDir needs a
// server to create the directory on).
func (cl *Cluster) DirPort() Port { return cl.dirs.PutPort() }

// Versions returns a typed client for the multiversion file server
// (§3.5).
func (cl *Cluster) Versions() *mvfs.Client {
	return mvfs.NewClient(cl.client, cl.multi.PutPort())
}

// Bank returns a typed client for the bank server (§3.6).
func (cl *Cluster) Bank() *banksvr.Client {
	return banksvr.NewClient(cl.client, cl.bank.PutPort())
}

// NewUnixFS creates a fresh root directory and returns a UNIX-like
// view over it (the paper's third file system). The context bounds
// the root-directory creation transaction only.
func (cl *Cluster) NewUnixFS(ctx context.Context) (*unixfs.FS, error) {
	dirs := cl.Dirs()
	root, err := dirs.CreateDir(ctx, cl.dirs.PutPort())
	if err != nil {
		return nil, err
	}
	return unixfs.New(dirs, cl.Files(), root), nil
}

// RPC returns the cluster's default client for raw transactions.
func (cl *Cluster) RPC() *rpc.Client { return cl.client }

// NewMachine attaches a fresh machine (its own F-box and RPC client) —
// a second user workstation, an intruder host, a server host for
// custom services.
func (cl *Cluster) NewMachine() (*fbox.FBox, *rpc.Client, error) {
	fb, err := cl.newFBox()
	if err != nil {
		return nil, nil, err
	}
	return fb, cl.newRPCClient(fb), nil
}

// Tap attaches a passive wiretap to the cluster network (the §2.4
// intruder's capture capability).
func (cl *Cluster) Tap() (*amnet.Tap, error) { return cl.net.Tap() }

// Net exposes the simulated network (partitions, stats).
func (cl *Cluster) Net() *amnet.SimNet { return cl.net }

// ErrNoCluster is returned by helpers that need a running cluster.
var ErrNoCluster = errors.New("amoeba: cluster not running")
