// Crash/restart chaos tests: kill a durable server mid-soak, restart
// it on the same cluster, and require (a) clients converge onto the
// reincarnation via locate failover, and (b) the replayed state obeys
// the service invariants — every acknowledged directory entry present,
// every dollar accounted for. Runs are seeded; CI repeats them under
// -race.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// killRestartSeeds is how many seeded runs each chaos test performs
// (the acceptance bar is 20 consecutive green runs; -short trims).
func killRestartSeeds(t *testing.T) int {
	if testing.Short() {
		return 4
	}
	return 20
}

// killCluster is a cluster under mild network chaos — the crash itself
// is the main fault — with fast client timeouts so failover retries
// turn around quickly.
func killCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		Seed:     seed,
		LossRate: 0.01,
		Latency:  50 * time.Microsecond,
		Jitter:   100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// untilOK retries op (each attempt carrying the client's own internal
// retries) until it succeeds or the generous attempt budget — sized
// for a kill/restart window — runs out.
func untilOK(t *testing.T, what string, op func(ctx context.Context) error) {
	t.Helper()
	var err error
	for attempt := 0; attempt < 60; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err = op(ctx)
		cancel()
		if err == nil {
			return
		}
		// A fenced or overloaded primary answers instantly — without a
		// pause between tries, fast failures burn the whole attempt
		// budget inside a single failover window.
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never converged: %v", what, err)
}

func TestChaosKillRestartDirsvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runKillRestartDirsvr(t, 0xD00D_0000+uint64(i))
		})
	}
}

func runKillRestartDirsvr(t *testing.T, seed uint64) {
	cl := killCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	// Phase 1: workers file entries while the server is up; each entry
	// is a freshly created subdirectory, so the test also proves
	// created capabilities survive the crash. An "entry exists" error
	// is a success: the enter landed and the (lost-reply) retry hit
	// at-least-once semantics.
	const workers, perWorker = 4, 6
	subs := make([]Capability, workers*perWorker)
	enter := func(g, i int) {
		name := fmt.Sprintf("w%d-e%d", g, i)
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker/2; i++ {
				enter(g, i)
			}
		}(g)
	}
	wg.Wait()

	// Crash the directory server, then keep working through the
	// outage: the second half of the entries is filed while workers
	// race the restart, exercising timeout → invalidate → LOCATE
	// failover on a live workload.
	if err := cl.Kill(cl.Machines().Dirs); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := perWorker / 2; i < perWorker; i++ {
				enter(g, i)
			}
		}(g)
	}
	time.Sleep(5 * time.Millisecond) // let some attempts hit the corpse
	if err := cl.Restart(cl.Machines().Dirs); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Convergence: every acknowledged entry is present and maps to the
	// exact capability the client was handed before the crash.
	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after replay, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			got, ok := listed[name]
			if !ok {
				t.Fatalf("acknowledged entry %q lost in the crash", name)
			}
			if got != subs[g*perWorker+i] {
				t.Fatalf("entry %q replayed with a different capability", name)
			}
		}
	}
	// The replayed subdirectory capabilities must still validate (the
	// table secrets were recovered, not re-rolled).
	untilOK(t, "lookup into replayed subdir", func(ctx context.Context) error {
		if err := dirs.Enter(ctx, subs[0], "alive", root); err != nil && !strings.Contains(err.Error(), "exists") {
			return err
		}
		_, err := dirs.Lookup(ctx, subs[0], "alive")
		return err
	})
}

func TestChaosKillRestartBanksvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runKillRestartBanksvr(t, 0xBA2C_0000+uint64(i))
		})
	}
}

func runKillRestartBanksvr(t *testing.T, seed uint64) {
	cl := killCluster(t, seed)
	bank := cl.Bank()

	const accounts, grant = 6, 1000
	caps := make([]Capability, accounts)
	for i := range caps {
		untilOK(t, "create account", func(ctx context.Context) error {
			var err error
			caps[i], err = bank.CreateAccount(ctx, "dollar", grant)
			return err
		})
	}

	// Workers shuffle money around a ring, straight through a crash.
	// Transfers are NOT idempotent — a retry after a lost reply moves
	// the money twice — but every movement stays inside the ring, so
	// the conserved total is immune to both retries and the crash.
	const workers, transfers = 4, 10
	var wg sync.WaitGroup
	work := func(g, lo int) {
		defer wg.Done()
		for i := lo; i < lo+transfers/2; i++ {
			from := caps[(g+i)%accounts]
			to := caps[(g+i+1)%accounts]
			untilOK(t, "transfer", func(ctx context.Context) error {
				err := bank.Transfer(ctx, from, to, "dollar", 1)
				if err != nil && strings.Contains(err.Error(), "insufficient funds") {
					return nil // ring got lopsided; the invariant is the total
				}
				return err
			})
		}
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, 0)
	}
	wg.Wait()

	if err := cl.Kill(cl.Machines().Bank); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, transfers/2)
	}
	time.Sleep(5 * time.Millisecond)
	if err := cl.Restart(cl.Machines().Bank); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Conservation across the crash: every dollar minted into the ring
	// is in exactly one replayed account.
	total := int64(0)
	for i := range caps {
		var bal map[string]int64
		untilOK(t, "balance", func(ctx context.Context) error {
			var err error
			bal, err = bank.Balance(ctx, caps[i])
			return err
		})
		total += bal["dollar"]
	}
	if total != accounts*grant {
		t.Fatalf("money not conserved across crash: %d, want %d", total, accounts*grant)
	}
}
