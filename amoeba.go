// Package amoeba is a Go reproduction of the Amoeba sparse-capability
// system from Tanenbaum, Mullender & van Renesse, "Using Sparse
// Capabilities in a Distributed Operating System" (ICDCS 1986).
//
// Objects live on servers and are named and protected by 128-bit
// capabilities held directly in user space: 48-bit server put-port,
// 24-bit object number, 8-bit rights field, 48-bit cryptographic check
// field (Fig. 2 of the paper). Server ports are protected by the F-box
// one-way transformation (Fig. 1); rights are protected by one of the
// four algorithms of §2.3; §2.4's key-matrix scheme protects
// capabilities in flight without F-boxes.
//
// The package is a facade over the internal packages. Most programs
// start with a Cluster — a self-contained simulated Amoeba network
// with whichever of the paper's §3 services they need:
//
//	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{})
//	if err != nil { ... }
//	defer cl.Close()
//	file, err := cl.Files().Create()
//	readOnly, err := cl.Files().Restrict(file, amoeba.RightRead)
//
// Real multi-process deployments use cmd/amoebad over TCP instead of a
// simulated network; the protocol and capabilities are identical.
package amoeba

import (
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/rpc"
)

// Core re-exported types. A Capability is a plain 16-byte value: copy
// it, store it in directories, send it to other processes — possession
// (with a valid check field) is authority.
type (
	// Capability is the paper's Fig. 2 token.
	Capability = cap.Capability
	// Rights is the 8-bit rights field.
	Rights = cap.Rights
	// Port is a 48-bit sparse port.
	Port = cap.Port
	// SchemeID selects one of the four §2.3 protection algorithms.
	SchemeID = cap.SchemeID
	// Signer is an F-box digital-signature identity (§2.2).
	Signer = fbox.Signer
	// MachineID identifies a machine on the cluster network — the
	// handle Kill, Restart, AddBackup and Promote take (see
	// Cluster.Machines).
	MachineID = amnet.MachineID
)

// Re-exported rights bits.
const (
	RightRead    = cap.RightRead
	RightWrite   = cap.RightWrite
	RightDestroy = cap.RightDestroy
	RightCreate  = cap.RightCreate
	RightRevoke  = cap.RightRevoke
	AllRights    = cap.AllRights
)

// Re-exported scheme identifiers, in the order §2.3 presents them.
const (
	// SchemeCompare: check field equals the object's random number;
	// no rights distinction.
	SchemeCompare = cap.SchemeCompare
	// SchemeEncrypted: RIGHTS ∥ KNOWN-CONSTANT encrypted per object.
	SchemeEncrypted = cap.SchemeEncrypted
	// SchemeOneWay: CHECK = F(random XOR rights), plaintext rights.
	SchemeOneWay = cap.SchemeOneWay
	// SchemeCommutative: client-side rights deletion via commutative
	// one-way functions.
	SchemeCommutative = cap.SchemeCommutative
)

// Nil is the zero capability.
var Nil = cap.Nil

// Decode parses a 16-byte wire capability.
func Decode(buf []byte) (Capability, error) { return cap.Decode(buf) }

// NewScheme constructs one of the four rights-protection algorithms
// with default primitives.
func NewScheme(id SchemeID) (cap.Scheme, error) { return cap.NewScheme(id) }

// NewSigner draws a fresh digital-signature identity.
func NewSigner() Signer { return fbox.NewSigner(nil, nil) }

// Status values surfaced to clients of the typed APIs (wrapped in
// *rpc.StatusError).
const (
	StatusOK            = rpc.StatusOK
	StatusBadCapability = rpc.StatusBadCapability
	StatusNoPermission  = rpc.StatusNoPermission
	StatusBadRequest    = rpc.StatusBadRequest
	StatusNoSuchOp      = rpc.StatusNoSuchOp
	StatusServerError   = rpc.StatusServerError
	StatusConflict      = rpc.StatusConflict
	StatusOverload      = rpc.StatusOverload
)

// ErrOverload matches (via errors.Is) the error a call returns when
// the server shed it at admission: the pool was saturated and the
// request's deadline budget would not have survived the queue. The
// client has already applied its budget-aware backoff/retry policy by
// the time this surfaces — seeing it means the call truly did not run.
var ErrOverload = rpc.ErrOverload

// IsStatus reports whether err is an RPC status error with the given
// status (e.g. IsStatus(err, StatusNoPermission)).
func IsStatus(err error, s rpc.Status) bool { return rpc.IsStatus(err, s) }

// CallOption tunes a single RPC transaction; every typed-client and
// rpc.Client method accepts them after the context. Re-exported here
// so programs outside this module (which cannot import internal/rpc)
// can use per-call options through the facade.
type CallOption = rpc.CallOption

// WithTimeout bounds each attempt's wait for a reply on one call.
func WithTimeout(d time.Duration) CallOption { return rpc.WithTimeout(d) }

// WithRetries sets the retry count for one call; WithRetries(0) means
// exactly one attempt.
func WithRetries(n int) CallOption { return rpc.WithRetries(n) }

// WithSigner signs one transaction with an F-box signature identity.
func WithSigner(s Signer) CallOption { return rpc.WithSigner(s) }

// Request and Reply are the raw transaction types for programs using
// Cluster.RPC directly (the typed clients cover the common cases).
type (
	// Request is a raw RPC request.
	Request = rpc.Request
	// Reply is a raw RPC reply.
	Reply = rpc.Reply
)

// OpEcho is the universal diagnostic opcode every service answers.
const OpEcho = rpc.OpEcho

// Batch transaction surface: Cluster.RPC().Batch(ctx, dest, reqs)
// packs several requests into one OpBatch frame; the server fans them
// out across its worker pool and the replies come back in order. The
// constants bound a single frame — split larger work across frames.
const (
	// OpBatch is the reserved batch-transaction opcode.
	OpBatch = rpc.OpBatch
	// MaxBatchItems bounds the sub-requests in one batch frame.
	MaxBatchItems = rpc.MaxBatchItems
	// MaxBatchBytes bounds one batch frame's packed payload.
	MaxBatchBytes = rpc.MaxBatchBytes
)

// NewSeededSource returns a deterministic randomness source, for
// reproducible clusters in tests and experiments.
func NewSeededSource(seed uint64) crypto.Source { return crypto.NewSeededSource(seed) }
