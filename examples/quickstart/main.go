// Quickstart: the paper's §2.3 running example on a live cluster.
//
// A client creates a file with the file server, writes data into it,
// and then gives another client permission to read (but not modify)
// the file just written. Finally the owner revokes all outstanding
// capabilities.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"amoeba"
)

func main() {
	ctx := context.Background()
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Seed: 1})
	if err != nil {
		log.Fatalf("booting cluster: %v", err)
	}
	defer cl.Close()
	files := cl.Files()

	// 1. CREATE FILE: the server picks a random number, stores it in
	// its object table, and returns the owner capability.
	owner, err := files.Create(ctx)
	if err != nil {
		log.Fatalf("create: %v", err)
	}
	fmt.Printf("owner capability:     %v\n", owner)

	// 2. WRITE FILE using the capability.
	if err := files.WriteAt(ctx, owner, 0, []byte("The first file in the new Amoeba system.\n")); err != nil {
		log.Fatalf("write: %v", err)
	}

	// 3. Fabricate a read-only sub-capability (server round trip under
	// scheme 2; purely local under scheme 3 — see examples/intruder
	// and the benches for that comparison).
	readOnly, err := files.Restrict(ctx, owner, amoeba.RightRead)
	if err != nil {
		log.Fatalf("restrict: %v", err)
	}
	fmt.Printf("read-only capability: %v\n", readOnly)

	// 4. "Give another client" the capability: it is 16 plain bytes.
	wire := readOnly.Encode()
	_, friendRPC, err := cl.NewMachine()
	if err != nil {
		log.Fatalf("new machine: %v", err)
	}
	received, err := amoeba.Decode(wire[:])
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	friendFiles := cl.FilesFor(friendRPC)

	data, err := friendFiles.ReadAt(ctx, received, 0, 128)
	if err != nil {
		log.Fatalf("friend read: %v", err)
	}
	fmt.Printf("friend reads:         %q\n", data)

	// The friend cannot write.
	err = friendFiles.WriteAt(ctx, received, 0, []byte("graffiti"))
	fmt.Printf("friend write denied:  %v\n", err)
	if !amoeba.IsStatus(err, amoeba.StatusNoPermission) {
		log.Fatal("expected a permission failure")
	}

	// 5. Revocation (§2.3): the owner asks the server to change the
	// object's random number; every outstanding capability dies.
	fresh, err := files.Revoke(ctx, owner)
	if err != nil {
		log.Fatalf("revoke: %v", err)
	}
	if _, err := friendFiles.ReadAt(ctx, received, 0, 1); amoeba.IsStatus(err, amoeba.StatusBadCapability) {
		fmt.Println("after revoke:         friend's capability is dead")
	} else {
		log.Fatalf("revocation failed: %v", err)
	}
	data, err = files.ReadAt(ctx, fresh, 0, 16)
	if err != nil {
		log.Fatalf("owner read with fresh capability: %v", err)
	}
	fmt.Printf("owner still reads:    %q\n", data)
}
