// Schemes: the four §2.3 rights-protection algorithms side by side.
//
// One object is created under each scheme; the program then walks the
// paper's narrative for each: what the capability looks like, whether
// rights can be distinguished, how restriction works (server round
// trip vs. the purely local Fk application of scheme 3), and what
// happens to a tampered capability.
//
// Run with: go run ./examples/schemes
package main

import (
	"fmt"
	"log"

	"amoeba"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
)

func main() {
	src := crypto.NewSeededSource(5)
	const serverPort = amoeba.Port(0x0A0EBA000001)

	for _, id := range []amoeba.SchemeID{
		amoeba.SchemeCompare,
		amoeba.SchemeEncrypted,
		amoeba.SchemeOneWay,
		amoeba.SchemeCommutative,
	} {
		scheme, err := amoeba.NewScheme(id)
		if err != nil {
			log.Fatal(err)
		}
		table := cap.NewTable(scheme, serverPort, src)
		owner, err := table.Create()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %v\n", id)
		fmt.Printf("   owner capability: %v\n", owner)

		// Rights distinction.
		rights, err := table.Validate(owner)
		if err != nil {
			log.Fatal(err)
		}
		if id == amoeba.SchemeCompare {
			zeroed := owner
			zeroed.Rights = 0
			r2, err := table.Validate(zeroed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   rights ignored: even with the field zeroed the capability conveys %v\n", r2)
		} else {
			fmt.Printf("   rights protected: conveys %v\n", rights)
		}

		// Restriction.
		switch {
		case id == amoeba.SchemeCompare:
			_, err := table.Restrict(owner, amoeba.RightRead)
			fmt.Printf("   restriction: impossible (%v)\n", err != nil)
		case scheme.CanRestrictLocally():
			weak, err := scheme.RestrictLocal(owner, amoeba.RightRead)
			if err != nil {
				log.Fatal(err)
			}
			r, err := table.Validate(weak)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   restriction: LOCAL — no server involved; server still validates it as %v\n", r)
		default:
			weak, err := table.Restrict(owner, amoeba.RightRead)
			if err != nil {
				log.Fatal(err)
			}
			r, err := table.Validate(weak)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   restriction: requires a server round trip; result conveys %v\n", r)
		}

		// Tampering.
		forged := owner
		forged.Check ^= 1 << 17
		if _, err := table.Validate(forged); err != nil {
			fmt.Printf("   tampered check field: rejected\n")
		} else {
			fmt.Printf("   tampered check field: ACCEPTED (scheme broken!)\n")
		}
		if id != amoeba.SchemeCompare {
			weak, err := table.Restrict(owner, amoeba.RightRead)
			if err != nil && id == amoeba.SchemeCompare {
				weak = owner
			}
			escalated := weak
			escalated.Rights |= amoeba.RightWrite
			if r, err := table.Validate(escalated); err != nil || !r.Has(amoeba.RightWrite) {
				fmt.Printf("   rights-bit escalation: rejected\n")
			} else {
				fmt.Printf("   rights-bit escalation: ACCEPTED (scheme broken!)\n")
			}
		}

		// Revocation works the same everywhere.
		if _, err := table.Revoke(owner); err != nil {
			log.Fatal(err)
		}
		if _, err := table.Validate(owner); err != nil {
			fmt.Printf("   revocation: all outstanding capabilities invalidated\n\n")
		}
	}
	fmt.Println("see EXPERIMENTS.md E1-E4 for the measured costs of each scheme")
}
