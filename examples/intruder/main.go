// Intruder: every attack the paper considers, each defeated — and one
// deliberately re-run with the defence disabled to show why the
// defence matters.
//
//  1. GET(P): listening on a public put-port receives nothing (Fig. 1).
//  2. Server impersonation: without the secret get-port G, the
//     intruder's F-box can never admit messages addressed to P.
//  3. Signature forgery: signing with the published F(S) transmits
//     F(F(S)), which does not verify (§2.2).
//  4. Capability forgery: random check-field guesses are rejected
//     (sparseness, §2.3); rights-bit tampering is detected (schemes
//     1-3).
//  5. Replay without F-boxes (§2.4): a captured sealed capability
//     replayed from the intruder's machine decrypts to garbage under
//     M[I][S]. With source forgery enabled (broken hardware), the
//     same replay SUCCEEDS — demonstrating exactly which property the
//     key-matrix scheme leans on.
//
// Run with: go run ./examples/intruder
package main

import (
	"fmt"
	"log"
	"time"

	"amoeba"
	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
)

func main() {
	src := crypto.NewSeededSource(4)

	// A three-machine LAN: client, server, intruder, plus a wiretap.
	net := amnet.NewSimNet(amnet.SimConfig{})
	defer net.Close()
	attach := func() *fbox.FBox {
		nic, err := net.Attach()
		if err != nil {
			log.Fatal(err)
		}
		return fbox.New(nic, nil)
	}
	client, server, intruder := attach(), attach(), attach()
	defer client.Close()
	defer server.Close()
	defer intruder.Close()

	// ---- Attack 1: GET on the public put-port.
	g := cap.Port(crypto.Rand48(src)) // the server's secret
	p := server.F(g)                  // public
	srvListener, err := server.Get(g, true)
	if err != nil {
		log.Fatal(err)
	}
	intListener, err := intruder.Get(p, true) // intruder "listens on P"
	if err != nil {
		log.Fatal(err)
	}
	// Broadcast so the intruder's machine physically receives the bits.
	if err := client.Put(amnet.BroadcastID, fbox.Message{Dest: p, Payload: []byte("secret request")}); err != nil {
		log.Fatal(err)
	}
	select {
	case <-srvListener.Recv():
		fmt.Println("attack 1 (GET on put-port):    server received the message; intruder's F-box listens on F(P) ≠ P")
	case <-time.After(time.Second):
		log.Fatal("server never received the message")
	}
	select {
	case <-intListener.Recv():
		log.Fatal("INTRUDER RECEIVED THE MESSAGE")
	case <-time.After(50 * time.Millisecond):
		fmt.Println("attack 1 verdict:              DEFEATED")
	}

	// ---- Attack 2: impersonation. The intruder wants clients' traffic
	// for P delivered to himself. His F-box admits only ports he can
	// GET; to GET P he would need G with P = F(G) — a preimage of a
	// one-way function.
	fmt.Println("attack 2 (impersonation):      intruder needs G = F⁻¹(P); one-way property makes this infeasible")
	fmt.Println("attack 2 verdict:              DEFEATED (structurally)")

	// ---- Attack 3: signature forgery.
	signer := fbox.NewSigner(src, nil)
	if err := client.Put(server.Machine(), fbox.Message{Dest: p, Sig: signer.Secret(), Payload: []byte("signed")}); err != nil {
		log.Fatal(err)
	}
	genuine := <-srvListener.Recv()
	// The intruder knows only the published F(S).
	if err := intruder.Put(server.Machine(), fbox.Message{Dest: p, Sig: signer.Public(), Payload: []byte("forged")}); err != nil {
		log.Fatal(err)
	}
	forged := <-srvListener.Recv()
	fmt.Printf("attack 3 (signature forgery):  genuine verifies=%v, forged verifies=%v\n",
		signer.Verifies(genuine), signer.Verifies(forged))
	if signer.Verifies(forged) || !signer.Verifies(genuine) {
		log.Fatal("signature scheme broken")
	}
	fmt.Println("attack 3 verdict:              DEFEATED")

	// ---- Attack 4: capability forgery against a live object table.
	scheme, err := amoeba.NewScheme(amoeba.SchemeOneWay)
	if err != nil {
		log.Fatal(err)
	}
	table := cap.NewTable(scheme, p, src)
	owner, err := table.Create()
	if err != nil {
		log.Fatal(err)
	}
	guesses := 0
	for i := 0; i < 1_000_000; i++ {
		forgedCap := owner
		forgedCap.Check = crypto.Rand48(src)
		if forgedCap.Check == owner.Check {
			continue
		}
		if _, err := table.Validate(forgedCap); err == nil {
			guesses++
		}
	}
	fmt.Printf("attack 4 (capability forgery): %d of 1,000,000 random check guesses accepted (expected ≈ %.4f)\n",
		guesses, 1e6/float64(uint64(1)<<48))
	readOnly, err := table.Restrict(owner, cap.RightRead)
	if err != nil {
		log.Fatal(err)
	}
	escalated := readOnly
	escalated.Rights |= cap.RightWrite
	if _, err := table.Validate(escalated); err == nil {
		log.Fatal("RIGHTS ESCALATION ACCEPTED")
	}
	fmt.Println("attack 4 verdict:              DEFEATED (sparseness + rights binding)")

	// ---- Attack 5: replay, in the no-F-box world of §2.4.
	const (
		mClient   amnet.MachineID = 101
		mServer   amnet.MachineID = 102
		mIntruder amnet.MachineID = 103
	)
	matrix := keymatrix.NewMatrix(src)
	peers := []amnet.MachineID{mClient, mServer, mIntruder}
	gClient := matrix.Guard(mClient, peers, nil)
	gServer := matrix.Guard(mServer, peers, nil)

	sealed, err := gClient.Seal(owner, mServer)
	if err != nil {
		log.Fatal(err)
	}
	// Honest delivery: source says mClient.
	delivered, err := gServer.Open(sealed, mClient)
	if err != nil {
		log.Fatal(err)
	}
	_, honestErr := table.Validate(delivered)
	// Replay: the intruder captured `sealed` on the wire and resends
	// it; the network stamps HIS source address.
	replayed, err := gServer.Open(sealed, mIntruder)
	if err != nil {
		log.Fatal(err)
	}
	_, replayErr := table.Validate(replayed)
	fmt.Printf("attack 5 (replay, §2.4):       honest delivery valid=%v, replay valid=%v\n",
		honestErr == nil, replayErr == nil)
	if honestErr != nil || replayErr == nil {
		log.Fatal("key matrix failed")
	}
	fmt.Println("attack 5 verdict:              DEFEATED (unforgeable source selects M[I][S])")

	// ---- Ablation: the same replay on a network with forgeable source
	// addresses (broken NIC hardware). Now the intruder claims to be
	// the client and the replay validates — the defence really does
	// rest on the source address.
	replayedForged, err := gServer.Open(sealed, mClient) // forged source!
	if err != nil {
		log.Fatal(err)
	}
	_, forgedReplayErr := table.Validate(replayedForged)
	fmt.Printf("ablation (forgeable source):   replay valid=%v — the attack works, as the paper warns\n",
		forgedReplayErr == nil)
	if forgedReplayErr != nil {
		log.Fatal("ablation expectation violated")
	}
}
