// Bank: §3.6 resource control and accounting with virtual money.
//
// The file server charges one dollar per block of storage. A client
// with a 5-dollar quota pre-pays the file server (one transfer, §3.6's
// "pre-pay for a substantial amount of work"), stores files until the
// prepaid balance is gone, and is then refused. CPU time is charged in
// a separate currency (francs), convertible at the bank's posted rate.
//
// Run with: go run ./examples/bank
package main

import (
	"context"
	"fmt"
	"log"

	"amoeba"
	"amoeba/internal/server/banksvr"
)

func main() {
	ctx := context.Background()
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{
		Seed: 3,
		Bank: &banksvr.Config{
			// A real quota configuration: money is minted only from
			// the treasury, so total supply is bounded.
			Treasury: map[string]int64{"dollar": 1000, "franc": 5000},
			Rates: map[[2]string]banksvr.Rate{
				{"dollar", "franc"}: {Num: 5, Den: 1},
				{"franc", "dollar"}: {Num: 1, Den: 5},
			},
		},
	})
	if err != nil {
		log.Fatalf("booting cluster: %v", err)
	}
	defer cl.Close()
	bank := cl.Bank()
	files := cl.Files()

	// Accounts: the client gets a 5-dollar quota; the file server
	// opens an empty account and publishes a deposit-only capability.
	clientAcct, err := bank.CreateAccount(ctx, "dollar", 5)
	if err != nil {
		log.Fatal(err)
	}
	fsAcct, err := bank.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		log.Fatal(err)
	}
	fsDeposit, err := bank.Restrict(ctx, fsAcct, amoeba.RightCreate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client quota: 5 dollars; file server charges 1 dollar per block\n\n")

	// The storage loop: pay, then write one block.
	const pricePerBlock = 1
	stored := 0
	for i := 0; ; i++ {
		if err := bank.Transfer(ctx, clientAcct, fsDeposit, "dollar", pricePerBlock); err != nil {
			fmt.Printf("block %d refused: %v\n", i, err)
			break
		}
		f, err := files.Create(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if err := files.WriteAt(ctx, f, 0, make([]byte, 1024)); err != nil {
			log.Fatal(err)
		}
		stored++
		fmt.Printf("block %d stored (paid %d dollar)\n", i, pricePerBlock)
	}
	fmt.Printf("\nstored %d blocks before the quota ran out\n", stored)

	cb, err := bank.Balance(ctx, clientAcct)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := bank.Balance(ctx, fsAcct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client balance:      %v\n", cb)
	fmt.Printf("file server balance: %v\n\n", fb)

	// Multi-currency: the file server converts its dollar income into
	// francs to buy CPU time (charged in francs, per the paper).
	if err := bank.Convert(ctx, fsAcct, "dollar", "franc", 5); err != nil {
		log.Fatal(err)
	}
	fb, err = bank.Balance(ctx, fsAcct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file server after converting 5 dollars to francs (rate 5/1): %v\n", fb)

	// Yen exists but is inconvertible here — the paper's "possibly
	// inconvertible currencies".
	err = bank.Convert(ctx, fsAcct, "franc", "yen", 1)
	fmt.Printf("franc->yen conversion refused: %v\n", err)
}
