// Filesystem: the §3.2–§3.5 storage stack in action.
//
//   - the block server hands out capability-protected disk blocks;
//   - the flat file server builds byte-stream files on top of it;
//   - two directory servers hold one naming graph spanning both, with
//     path lookup hopping servers transparently (§3.4);
//   - the multiversion file server demonstrates copy-on-write versions
//     and atomic commit (§3.5);
//   - the UNIX-like layer runs paths over the whole stack.
//
// Run with: go run ./examples/filesystem
package main

import (
	"context"
	"fmt"
	"log"

	"amoeba"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/unixfs"
)

func main() {
	ctx := context.Background()
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Seed: 2})
	if err != nil {
		log.Fatalf("booting cluster: %v", err)
	}
	defer cl.Close()

	// ----- A naming graph across TWO directory servers.
	// The cluster runs one directory server; start a second on a fresh
	// machine, as another organization might.
	fb2, _, err := cl.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := amoeba.NewScheme(amoeba.SchemeOneWay)
	if err != nil {
		log.Fatal(err)
	}
	dir2 := dirsvr.New(fb2, scheme, amoeba.NewSeededSource(22))
	if err := dir2.Start(); err != nil {
		log.Fatal(err)
	}
	defer dir2.Close()

	dirs := cl.Dirs()
	root, err := dirs.CreateDir(ctx, cl.DirPort()) // on directory server 1
	if err != nil {
		log.Fatal(err)
	}
	remote, err := dirs.CreateDir(ctx, dir2.PutPort()) // on directory server 2
	if err != nil {
		log.Fatal(err)
	}
	if err := dirs.Enter(ctx, root, "projects", remote); err != nil {
		log.Fatal(err)
	}

	// A file, named on server 2, stored on the flat file server.
	files := cl.Files()
	paper, err := files.Create(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := files.WriteAt(ctx, paper, 0, []byte("Using Sparse Capabilities in a Distributed OS")); err != nil {
		log.Fatal(err)
	}
	if err := dirs.Enter(ctx, remote, "icdcs86.txt", paper); err != nil {
		log.Fatal(err)
	}

	// Path lookup crosses from server 1 to server 2 without the client
	// doing anything special.
	got, err := dirs.LookupPath(ctx, root, "projects/icdcs86.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projects/icdcs86.txt -> %v\n", got)
	fmt.Printf("  root dir is on server %v\n", root.Server)
	fmt.Printf("  'projects' dir is on server %v (different server, same path syntax)\n", remote.Server)
	body, err := files.ReadAt(ctx, got, 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  contents: %q\n\n", body)

	// ----- Multiversion files: COW + atomic commit.
	mv := cl.Versions()
	doc, err := mv.CreateFile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	// Base version: 100 pages.
	v1, err := mv.NewVersion(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	for p := uint32(0); p < 100; p++ {
		if err := mv.WritePage(ctx, v1, p, []byte{byte(p)}); err != nil {
			log.Fatal(err)
		}
	}
	if _, copied, err := mv.Commit(ctx, v1); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("multiversion: base commit wrote %d pages\n", copied)
	}
	// Second version: edit one page; only that page is copied.
	v2, err := mv.NewVersion(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := mv.WritePage(ctx, v2, 42, []byte("edited")); err != nil {
		log.Fatal(err)
	}
	verNo, copied, err := mv.Commit(ctx, v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiversion: version %d committed, %d page(s) copied of 100 (copy-on-write)\n", verNo, copied)
	// The old version is still readable (write-once media semantics).
	old, err := mv.ReadPageVersion(ctx, doc, 42, 1)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := mv.ReadPage(ctx, doc, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiversion: page 42 was %v..., is now %q...\n\n", old[0], cur[:6])

	// ----- The UNIX-like layer over the same servers.
	fs := unixfs.New(dirs, files, root)
	if _, err := fs.Mkdir(ctx, "home"); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Create(ctx, "home/notes.txt"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile(ctx, "home/notes.txt", 0, []byte("capabilities all the way down")); err != nil {
		log.Fatal(err)
	}
	names, err := fs.ReadDir(ctx, "/")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unixfs: / contains %v\n", names)
	data, err := fs.ReadFile(ctx, "home/notes.txt", 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unixfs: home/notes.txt: %q\n", data)
}
