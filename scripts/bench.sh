#!/usr/bin/env sh
# Run the benchmark suite and record the result in benchmarks/latest.txt
# (plus a timestamped copy), so successive PRs can diff performance.
#
# Usage: scripts/bench.sh [extra go test args]
#   BENCH_PATTERN=E11 scripts/bench.sh     # subset by name
#   BENCH_COUNT=5 scripts/bench.sh        # repeat for benchstat
set -eu

cd "$(dirname "$0")/.."
mkdir -p benchmarks

pattern="${BENCH_PATTERN:-.}"
count="${BENCH_COUNT:-1}"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"

{
	echo "# amoeba benchmarks"
	echo "# date: ${stamp}"
	echo "# go: $(go version)"
	echo "# commit: $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
} > benchmarks/latest.txt

go test -run '^$' -bench "$pattern" -count "$count" -benchmem "$@" . \
	| tee -a benchmarks/latest.txt

cp benchmarks/latest.txt "benchmarks/${stamp}.txt"
echo "wrote benchmarks/latest.txt and benchmarks/${stamp}.txt" >&2
