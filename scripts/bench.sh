#!/usr/bin/env sh
# Run the benchmark suite and record the result in benchmarks/latest.txt
# (plus a timestamped copy and benchmarks/latest.json), so successive
# PRs can diff performance.
#
# Usage: scripts/bench.sh [extra go test args]
#   BENCH_PATTERN=E11 scripts/bench.sh          # subset by name
#   BENCH_COUNT=5 scripts/bench.sh              # repeat for benchstat
#   BENCH_BASELINE=benchmarks/old.txt scripts/bench.sh
#       # after the run, compare old vs new: uses benchstat when
#       # installed, otherwise a built-in side-by-side ns/op table
set -eu

cd "$(dirname "$0")/.."
mkdir -p benchmarks

pattern="${BENCH_PATTERN:-.}"
count="${BENCH_COUNT:-1}"
stamp="$(date -u +%Y%m%dT%H%M%SZ)"

# Snapshot the baseline before the run truncates latest.txt —
# BENCH_BASELINE=benchmarks/latest.txt ("compare to last run") must
# diff against the OLD contents, not the file we are about to rewrite.
baseline_snapshot=""
if [ -n "${BENCH_BASELINE:-}" ]; then
	baseline_snapshot="$(mktemp)"
	trap 'rm -f "$baseline_snapshot"' EXIT
	cp "$BENCH_BASELINE" "$baseline_snapshot"
fi

{
	echo "# amoeba benchmarks"
	echo "# date: ${stamp}"
	echo "# go: $(go version)"
	echo "# commit: $(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
} > benchmarks/latest.txt

go test -run '^$' -bench "$pattern" -count "$count" -benchmem "$@" . \
	| tee -a benchmarks/latest.txt

go run ./scripts/benchjson < benchmarks/latest.txt > benchmarks/latest.json

cp benchmarks/latest.txt "benchmarks/${stamp}.txt"
echo "wrote benchmarks/latest.txt, benchmarks/latest.json and benchmarks/${stamp}.txt" >&2

if [ -n "$baseline_snapshot" ]; then
	if command -v benchstat >/dev/null 2>&1; then
		benchstat "$baseline_snapshot" benchmarks/latest.txt
	else
		echo "# benchstat not installed; ns/op old vs new:" >&2
		awk '
			/^Benchmark/ {
				for (i = 1; i <= NF; i++) if ($i == "ns/op") v = $(i-1)
				if (FNR == NR) old[$1] = v
				else if ($1 in old) {
					d = (v - old[$1]) / old[$1] * 100
					printf "%-60s %12s -> %12s ns/op  (%+.1f%%)\n", $1, old[$1], v, d
				}
			}
		' "$baseline_snapshot" benchmarks/latest.txt
	fi
fi
