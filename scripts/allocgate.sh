#!/usr/bin/env sh
# Allocation regression gate for the zero-copy wire path: the round-trip
# transaction benchmark must stay at or under the allocs/op budget. It
# runs at exactly 2 (the per-call option closure and the one deliberate
# reply-data copy at the API boundary) — and that is WITH the obs
# instrumentation live on the serving path: the benchmark cluster wires
# ServerStats into every service, so this gate also proves that metrics
# counters, latency histograms and the access-log ring add zero
# allocations per request. CI fails the build past the budget.
#
# A second gate pins the lease-cached path lookup (E24) at ZERO
# allocs/op: a cache-hit walk of any depth must never touch the heap —
# the whole point of serving lookups locally is that the hot path costs
# nanoseconds, and one stray allocation is how that erodes.
#
# Usage: scripts/allocgate.sh            # default budgets 2 / 0
#        ALLOC_BUDGET=4 scripts/allocgate.sh
#        CACHE_ALLOC_BUDGET=1 scripts/allocgate.sh
set -eu

cd "$(dirname "$0")/.."
budget="${ALLOC_BUDGET:-2}"
cache_budget="${CACHE_ALLOC_BUDGET:-0}"

out=$(go test -run '^$' -bench 'BenchmarkE11_TransSimnet$' -benchmem -benchtime 2000x .)
echo "$out"
allocs=$(echo "$out" | awk '/^BenchmarkE11_TransSimnet/ {
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
if [ -z "$allocs" ]; then
	echo "allocgate: could not parse allocs/op from benchmark output" >&2
	exit 1
fi
if [ "$allocs" -gt "$budget" ]; then
	echo "allocgate: BenchmarkE11_TransSimnet at ${allocs} allocs/op exceeds budget ${budget}" >&2
	exit 1
fi
echo "allocgate: ok — ${allocs} allocs/op (budget ${budget})"

out=$(go test -run '^$' -bench 'BenchmarkE24_CachedDirLookup/depth=16$' -benchmem -benchtime 2000x .)
echo "$out"
callocs=$(echo "$out" | awk '/^BenchmarkE24_CachedDirLookup/ {
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
if [ -z "$callocs" ]; then
	echo "allocgate: could not parse allocs/op from E24 output" >&2
	exit 1
fi
if [ "$callocs" -gt "$cache_budget" ]; then
	echo "allocgate: BenchmarkE24_CachedDirLookup/depth=16 at ${callocs} allocs/op exceeds budget ${cache_budget}" >&2
	exit 1
fi
echo "allocgate: ok — cached lookup at ${callocs} allocs/op (budget ${cache_budget})"
