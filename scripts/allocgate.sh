#!/usr/bin/env sh
# Allocation regression gate for the zero-copy wire path: the round-trip
# transaction benchmark must stay at or under the allocs/op budget. It
# runs at exactly 2 (the per-call option closure and the one deliberate
# reply-data copy at the API boundary) — and that is WITH the obs
# instrumentation live on the serving path: the benchmark cluster wires
# ServerStats into every service, so this gate also proves that metrics
# counters, latency histograms and the access-log ring add zero
# allocations per request. CI fails the build past the budget.
#
# Usage: scripts/allocgate.sh            # default budget 2
#        ALLOC_BUDGET=4 scripts/allocgate.sh
set -eu

cd "$(dirname "$0")/.."
budget="${ALLOC_BUDGET:-2}"

out=$(go test -run '^$' -bench 'BenchmarkE11_TransSimnet$' -benchmem -benchtime 2000x .)
echo "$out"
allocs=$(echo "$out" | awk '/^BenchmarkE11_TransSimnet/ {
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}')
if [ -z "$allocs" ]; then
	echo "allocgate: could not parse allocs/op from benchmark output" >&2
	exit 1
fi
if [ "$allocs" -gt "$budget" ]; then
	echo "allocgate: BenchmarkE11_TransSimnet at ${allocs} allocs/op exceeds budget ${budget}" >&2
	exit 1
fi
echo "allocgate: ok — ${allocs} allocs/op (budget ${budget})"
