// Command benchjson converts `go test -bench` output (stdin) into a
// JSON array (stdout), one object per benchmark result, so dashboards
// and regression gates can consume benchmarks/latest.json without
// re-parsing the text format.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters}
		// The tail is value/unit pairs: 123 ns/op, 45 MB/s, 96 B/op, ...
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
