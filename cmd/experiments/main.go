// Command experiments regenerates every experiment in DESIGN.md §4 and
// prints the tables recorded in EXPERIMENTS.md: the comparative
// properties and costs of the paper's four rights-protection schemes,
// the F-box and signature properties of Fig. 1, the §2.4 key-matrix
// behaviour, the sparseness sweep, and end-to-end service costs.
//
// Usage:
//
//	go run ./cmd/experiments           # full run
//	go run ./cmd/experiments -quick    # reduced iteration counts
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"amoeba"
	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/keymatrix"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
)

var quick = flag.Bool("quick", false, "reduced iteration counts")

func iters(full int) int {
	if *quick {
		return full / 10
	}
	return full
}

// measure returns ns/op for fn run n times.
func measure(n int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func main() {
	flag.Parse()
	fmt.Println("# Amoeba sparse-capability experiments")
	fmt.Println()
	expF2()
	expF1()
	expSchemes()
	expE4Sweep()
	expE4LocalVsServer()
	expE5()
	expE6()
	expE7()
	expE8()
	expE9()
	expE10()
	expE11E12()
}

// ---------------------------------------------------------------- F2

func expF2() {
	fmt.Println("## F2 — Fig. 2 capability format")
	c := cap.Capability{Server: 0x123456789abc, Object: 0xABCDEF, Rights: 0x5A, Check: 0x0F0E0D0C0B0A}
	w := c.Encode()
	dec, err := cap.Decode(w[:])
	if err != nil || dec != c {
		log.Fatal("F2: wire format broken")
	}
	ns := measure(iters(2_000_000), func() {
		w := c.Encode()
		dec, _ = cap.Decode(w[:])
	})
	fmt.Printf("- wire size: %d bytes = 48+24+8+48 bits, field order per Fig. 2: OK\n", cap.Size)
	fmt.Printf("- encode+decode: %.1f ns/op\n\n", ns)
}

// ---------------------------------------------------------------- F1

func expF1() {
	fmt.Println("## F1 — Fig. 1 F-box port protection")
	for _, f := range []crypto.OneWay{crypto.SHA48{Tag: 1}, crypto.Purdy{}} {
		x := uint64(0x1234)
		ns := measure(iters(2_000_000), func() { x = f.F(x) })
		fmt.Printf("- one-way transform %-8s: %.1f ns/op\n", f.Name(), ns)
	}

	// Property run: intruder GET(P) receives nothing.
	net := amnet.NewSimNet(amnet.SimConfig{})
	defer net.Close()
	src := crypto.NewSeededSource(0xF1)
	attach := func() *fbox.FBox {
		nic, err := net.Attach()
		if err != nil {
			log.Fatal(err)
		}
		return fbox.New(nic, nil)
	}
	client, server, intruder := attach(), attach(), attach()
	defer client.Close()
	defer server.Close()
	defer intruder.Close()
	g := cap.Port(crypto.Rand48(src))
	p := server.F(g)
	srvL, err := server.Get(g, true)
	if err != nil {
		log.Fatal(err)
	}
	intL, err := intruder.Get(p, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Put(amnet.BroadcastID, fbox.Message{Dest: p, Payload: []byte("x")}); err != nil {
		log.Fatal(err)
	}
	select {
	case <-srvL.Recv():
	case <-time.After(time.Second):
		log.Fatal("F1: server did not receive")
	}
	select {
	case <-intL.Recv():
		log.Fatal("F1: intruder received!")
	case <-time.After(20 * time.Millisecond):
	}
	fmt.Println("- intruder GET(P) listens on F(P), receives nothing: CONFIRMED")
	fmt.Println()
}

// ------------------------------------------------------------ E1–E4

func expSchemes() {
	fmt.Println("## E1–E4 — the four §2.3 rights-protection schemes")
	fmt.Println()
	fmt.Println("| scheme | mint ns | validate ns | rights? | local restrict? | tamper detected? |")
	fmt.Println("|---|---|---|---|---|---|")
	src := crypto.NewSeededSource(0xE14)
	for _, id := range cap.AllSchemeIDs() {
		s, err := cap.NewScheme(id)
		if err != nil {
			log.Fatal(err)
		}
		secret := s.PrepareSecret(crypto.Rand48(src))
		owner := s.Mint(0xABC, 1, secret)

		mintNs := measure(iters(200_000), func() { s.Mint(0xABC, 1, secret) })
		valNs := measure(iters(200_000), func() {
			if _, err := s.Validate(owner, secret); err != nil {
				log.Fatal(err)
			}
		})

		distinguishes := id != cap.SchemeCompare
		tamperDetected := "n/a"
		if distinguishes {
			weak, err := s.Restrict(owner, cap.RightRead, secret)
			if err != nil {
				log.Fatal(err)
			}
			forged := weak
			forged.Rights |= cap.RightWrite
			if id == cap.SchemeEncrypted {
				// Rights field is ciphertext here; flip a bit of it.
				forged = weak
				forged.Rights ^= 0x10
			}
			if rights, err := s.Validate(forged, secret); err != nil || !rights.Has(cap.RightWrite) {
				tamperDetected = "yes"
			} else {
				tamperDetected = "NO"
			}
		}
		fmt.Printf("| %s | %.0f | %.0f | %v | %v | %s |\n",
			id, mintNs, valNs, distinguishes, s.CanRestrictLocally(), tamperDetected)
	}
	// The paper's E2 warning: XOR is not a suitable cipher.
	xor := cap.NewXOREncryptedScheme()
	secret := xor.PrepareSecret(0xBEEF)
	weak, err := xor.Restrict(xor.Mint(0xABC, 1, secret), cap.RightRead, secret)
	if err != nil {
		log.Fatal(err)
	}
	forged := weak
	forged.Rights ^= cap.RightWrite
	if rights, err := xor.Validate(forged, secret); err == nil && rights.Has(cap.RightWrite) {
		fmt.Println("\n- scheme 1 with XOR \"cipher\": rights forgery ACCEPTED — reproduces the paper's warning that XOR will not do")
	} else {
		log.Fatal("E2: XOR warning not reproduced")
	}
	fmt.Println()
}

// E4: scheme 3 validation cost grows with deleted rights.
func expE4Sweep() {
	fmt.Println("## E4 — scheme 3 validation cost vs. deleted rights")
	fmt.Println()
	fmt.Println("| rights deleted | validate ns |")
	fmt.Println("|---|---|")
	s := cap.NewCommutativeScheme(nil)
	secret := s.PrepareSecret(777)
	owner := s.Mint(0xABC, 1, secret)
	for deleted := 0; deleted <= 8; deleted++ {
		mask := cap.AllRights << uint(deleted)
		weak, err := s.RestrictLocal(owner, mask)
		if err != nil {
			log.Fatal(err)
		}
		ns := measure(iters(200_000), func() {
			if _, err := s.Validate(weak, secret); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("| %d | %.0f |\n", deleted, ns)
	}
	fmt.Println()
}

func expE4LocalVsServer() {
	ctx := context.Background()
	fmt.Println("## E4 — restriction: scheme 3 local vs. scheme 2 server round trip")
	s3 := cap.NewCommutativeScheme(nil)
	secret := s3.PrepareSecret(777)
	owner := s3.Mint(0xABC, 1, secret)
	localNs := measure(iters(200_000), func() {
		if _, err := s3.RestrictLocal(owner, cap.RightRead); err != nil {
			log.Fatal(err)
		}
	})

	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Scheme: amoeba.SchemeOneWay, Seed: 0xE4})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Files().Create(ctx)
	if err != nil {
		log.Fatal(err)
	}
	serverNs := measure(iters(5_000), func() {
		if _, err := cl.Files().Restrict(ctx, f, cap.RightRead); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("- scheme 3 local restriction:        %.0f ns\n", localNs)
	fmt.Printf("- scheme 2 via server (simnet RPC):  %.0f ns\n", serverNs)
	fmt.Printf("- factor avoided by scheme 3:        %.1fx (grows with real network latency)\n\n", serverNs/localNs)
}

func expE5() {
	fmt.Println("## E5 — \"the RIGHTS field is not even needed\"")
	s := cap.NewCommutativeScheme(nil)
	secret := s.PrepareSecret(99)
	weak, err := s.RestrictLocal(s.Mint(0xABC, 1, secret), cap.RightRead|cap.RightCreate)
	if err != nil {
		log.Fatal(err)
	}
	withNs := measure(iters(100_000), func() {
		if _, err := s.Validate(weak, secret); err != nil {
			log.Fatal(err)
		}
	})
	blind := weak
	blind.Rights = 0 // erased
	rights, err := s.ValidateExhaustive(blind, secret)
	if err != nil || rights != cap.RightRead|cap.RightCreate {
		log.Fatal("E5: exhaustive validation failed to recover rights")
	}
	exhNs := measure(iters(2_000), func() {
		if _, err := s.ValidateExhaustive(blind, secret); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("- rights recovered with field erased: %v\n", rights)
	fmt.Printf("- validate with rights field:   %.0f ns\n", withNs)
	fmt.Printf("- validate trying all 2^8 sets: %.0f ns (%.0fx — \"its presence merely speeds up the checking\")\n\n",
		exhNs, exhNs/withNs)
}

func expE6() {
	fmt.Println("## E6 — revocation")
	fmt.Println()
	fmt.Println("| scheme | revoke ns | outstanding caps invalidated? |")
	fmt.Println("|---|---|---|")
	for _, id := range cap.AllSchemeIDs() {
		s, err := cap.NewScheme(id)
		if err != nil {
			log.Fatal(err)
		}
		t := cap.NewTable(s, 0xABC, crypto.NewSeededSource(uint64(id)+0xE6))
		owner, err := t.Create()
		if err != nil {
			log.Fatal(err)
		}
		old := owner
		ns := measure(iters(50_000), func() {
			owner, err = t.Revoke(owner)
			if err != nil {
				log.Fatal(err)
			}
		})
		_, errOld := t.Validate(old)
		fmt.Printf("| %s | %.0f | %v |\n", id, ns, errOld != nil)
	}
	fmt.Println()
}

func expE7() {
	fmt.Println("## E7 — F-box digital signatures")
	f := crypto.SHA48{Tag: 1}
	signer := fbox.NewSigner(crypto.NewSeededSource(7), f)
	ns := measure(iters(500_000), func() {
		onWire := cap.Port(f.F(uint64(signer.Secret())))
		if !fbox.VerifySignature(fbox.Received{Message: fbox.Message{Sig: onWire}}, signer.Public()) {
			log.Fatal("E7 broken")
		}
	})
	forgedOnWire := cap.Port(f.F(uint64(signer.Public()))) // F(F(S))
	forgedOK := fbox.VerifySignature(fbox.Received{Message: fbox.Message{Sig: forgedOnWire}}, signer.Public())
	fmt.Printf("- sign (F-transform) + verify: %.0f ns\n", ns)
	fmt.Printf("- forging with published F(S) verifies: %v (transmitted as F(F(S)))\n\n", forgedOK)
}

func expE8() {
	fmt.Println("## E8 — §2.4 key matrix (no F-boxes)")
	src := crypto.NewSeededSource(8)
	m := keymatrix.NewMatrix(src)
	peers := []amnet.MachineID{1, 2, 3}
	client := m.Guard(1, peers, nil)
	server := m.Guard(2, peers, nil)
	c := cap.Capability{Server: 0xABC, Object: 1, Rights: 0xFF, Check: 0x123456}

	missNs := measure(iters(50_000), func() {
		client.FlushCaches()
		if _, err := client.Seal(c, 2); err != nil {
			log.Fatal(err)
		}
	})
	if _, err := client.Seal(c, 2); err != nil {
		log.Fatal(err)
	}
	hitNs := measure(iters(2_000_000), func() {
		if _, err := client.Seal(c, 2); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("- seal, cache miss: %.0f ns;  cache hit: %.0f ns  (%.0fx saved — the paper's hashed caches)\n",
		missNs, hitNs, missNs/hitNs)

	// Replay property.
	sealed, err := client.Seal(c, 2)
	if err != nil {
		log.Fatal(err)
	}
	honest, err := server.Open(sealed, 1)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := server.Open(sealed, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("- honest open recovers capability: %v; replay from machine 3 recovers it: %v\n",
		honest == c, replayed == c)

	// Bootstrap handshake.
	priv, err := crypto.GenerateRSA(1024, nil)
	if err != nil {
		log.Fatal(err)
	}
	n := iters(200)
	start := time.Now()
	for i := 0; i < n; i++ {
		a, b := keymatrix.NewGuard(1, nil), keymatrix.NewGuard(2, nil)
		if err := keymatrix.Bootstrap(a, b, priv, src); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("- RSA-1024 bootstrap handshake: %.2f ms/op (fresh conventional keys per reboot)\n",
		float64(time.Since(start).Microseconds())/float64(n)/1000)

	// Ablation: a full RPC round trip with and without sealing.
	plainNs := sealedRPCCost(false)
	sealedNs := sealedRPCCost(true)
	fmt.Printf("- validate-capability RPC: plain %.1f µs, sealed %.1f µs (+%.1f µs for the matrix, amortized by the caches)\n\n",
		plainNs/1000, sealedNs/1000, (sealedNs-plainNs)/1000)
}

func sealedRPCCost(sealed bool) float64 {
	ctx := context.Background()
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Seed: 0xE8A, SealCapabilities: sealed})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Files().Create(ctx)
	if err != nil {
		log.Fatal(err)
	}
	// Warm locate + seal caches.
	if _, err := cl.RPC().Validate(ctx, f); err != nil {
		log.Fatal(err)
	}
	return measure(iters(10_000), func() {
		if _, err := cl.RPC().Validate(ctx, f); err != nil {
			log.Fatal(err)
		}
	})
}

func expE9() {
	fmt.Println("## E9 — sparseness: forgery probability vs. check-field width")
	fmt.Println()
	fmt.Println("| check bits | guesses | forgeries | empirical p | expected p |")
	fmt.Println("|---|---|---|---|---|")
	f := crypto.SHA48{Tag: 2}
	src := crypto.NewSeededSource(9)
	secret := crypto.Rand48(src)
	rights := uint64(0xFF)
	for _, w := range []uint{8, 12, 16, 20, 24, 48} {
		mask := uint64(1)<<w - 1
		want := f.F(secret^rights) & mask
		trials := iters(2_000_000)
		hits := 0
		for i := 0; i < trials; i++ {
			if src.Uint64()&mask == want {
				hits++
			}
		}
		fmt.Printf("| %d | %d | %d | %.2e | %.2e |\n",
			w, trials, hits, float64(hits)/float64(trials), 1/float64(uint64(1)<<w))
	}
	fmt.Println()
	fmt.Println("At the paper's 48 bits, expected success is 3.6e-15 per guess;")
	fmt.Println("the sweep shows the exponential decay that makes the capability 'sparse'.")
	fmt.Println()
}

func expE10() {
	ctx := context.Background()
	fmt.Println("## E10 — the §3 services, end-to-end over the simulated network")
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Seed: 0xE10, DiskBlocks: 8192})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	seg, err := cl.Memory().CreateSegment(ctx, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	segNs := measure(iters(5_000), func() {
		if err := cl.Memory().Write(ctx, seg, 0, buf); err != nil {
			log.Fatal(err)
		}
	})

	file, err := cl.Files().Create(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fwNs := measure(iters(2_000), func() {
		if err := cl.Files().WriteAt(ctx, file, 0, buf[:1024]); err != nil {
			log.Fatal(err)
		}
	})
	frNs := measure(iters(2_000), func() {
		if _, err := cl.Files().ReadAt(ctx, file, 0, 1024); err != nil {
			log.Fatal(err)
		}
	})

	dirs := cl.Dirs()
	root, err := dirs.CreateDir(ctx, cl.DirPort())
	if err != nil {
		log.Fatal(err)
	}
	if err := dirs.Enter(ctx, root, "x", file); err != nil {
		log.Fatal(err)
	}
	dlNs := measure(iters(5_000), func() {
		if _, err := dirs.Lookup(ctx, root, "x"); err != nil {
			log.Fatal(err)
		}
	})

	mv := cl.Versions()
	doc, err := mv.CreateFile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	mvNs := measure(iters(2_000), func() {
		v, err := mv.NewVersion(ctx, doc)
		if err != nil {
			log.Fatal(err)
		}
		if err := mv.WritePage(ctx, v, 0, buf[:1024]); err != nil {
			log.Fatal(err)
		}
		if _, _, err := mv.Commit(ctx, v); err != nil {
			log.Fatal(err)
		}
	})

	bank := cl.Bank()
	a, err := bank.CreateAccount(ctx, "dollar", 1<<40)
	if err != nil {
		log.Fatal(err)
	}
	b, err := bank.CreateAccount(ctx, "dollar", 0)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := bank.Restrict(ctx, b, cap.RightCreate)
	if err != nil {
		log.Fatal(err)
	}
	btNs := measure(iters(5_000), func() {
		if err := bank.Transfer(ctx, a, dep, "dollar", 1); err != nil {
			log.Fatal(err)
		}
	})

	fmt.Println()
	fmt.Println("| operation | µs/op |")
	fmt.Println("|---|---|")
	fmt.Printf("| memory server: 4 KiB segment write | %.1f |\n", segNs/1000)
	fmt.Printf("| flat file: 1 KiB write (via block server) | %.1f |\n", fwNs/1000)
	fmt.Printf("| flat file: 1 KiB read | %.1f |\n", frNs/1000)
	fmt.Printf("| directory lookup | %.1f |\n", dlNs/1000)
	fmt.Printf("| multiversion: new version + 1 page + commit | %.1f |\n", mvNs/1000)
	fmt.Printf("| bank transfer | %.1f |\n", btNs/1000)
	fmt.Println()
}

func expE11E12() {
	ctx := context.Background()
	fmt.Println("## E11/E12 — trans() and LOCATE")
	cl, err := amoeba.NewCluster(amoeba.ClusterConfig{Seed: 0xE11})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	port := cl.Files().Port()
	echoNs := measure(iters(10_000), func() {
		rep, err := cl.RPC().Trans(ctx, port, rpc.Request{Op: rpc.OpEcho, Data: []byte("x")})
		if err != nil || rep.Status != rpc.StatusOK {
			log.Fatal(err)
		}
	})
	fb, _, err := cl.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	res := locate.New(fb, locate.Config{TTL: -1})
	if _, err := res.Lookup(ctx, port); err != nil {
		log.Fatal(err)
	}
	hitNs := measure(iters(1_000_000), func() {
		if _, err := res.Lookup(ctx, port); err != nil {
			log.Fatal(err)
		}
	})
	res2 := locate.New(fb, locate.Config{})
	bcastNs := measure(iters(5_000), func() {
		res2.Invalidate(port)
		if _, err := res2.Lookup(ctx, port); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("- trans() echo round trip (simnet): %.1f µs\n", echoNs/1000)
	fmt.Printf("- LOCATE: cache hit %.0f ns, broadcast round %.1f µs (%.0fx — the §2.2 port cache)\n\n",
		hitNs, bcastNs/1000, bcastNs/hitNs)
}
