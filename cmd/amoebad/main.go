// Command amoebad hosts Amoeba services on a real TCP cluster. Every
// daemon is one "machine": it joins the cluster described by the
// registry, starts the requested services, and prints their public
// put-ports. Clients (cmd/amoeba) locate services by broadcasting
// LOCATE to the cluster, exactly as on the simulated network.
//
// Example two-machine cluster on one host:
//
//	amoebad -machine 1 -registry '1=127.0.0.1:7001,2=127.0.0.1:7002' -services block,file,dir
//	amoebad -machine 2 -registry '1=127.0.0.1:7001,2=127.0.0.1:7002' -services bank,mem,mv
//
// With -seed the service get-ports are deterministic, so put-ports
// stay stable across restarts (a development convenience; production
// persists the secrets instead).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/crypto"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/obs"
	"amoeba/internal/rpc"
	"amoeba/internal/server/banksvr"
	"amoeba/internal/server/blocksvr"
	"amoeba/internal/server/dirsvr"
	"amoeba/internal/server/flatfs"
	"amoeba/internal/server/memsvr"
	"amoeba/internal/server/mvfs"
	"amoeba/internal/svc"
	"amoeba/internal/vdisk"
)

var (
	machine    = flag.Uint("machine", 1, "this machine's ID in the registry")
	registry   = flag.String("registry", "1=127.0.0.1:7001", "cluster map: id=host:port,id=host:port,...")
	services   = flag.String("services", "mem,block,file,dir,mv,bank", "comma-separated services to run")
	schemeFlag = flag.Int("scheme", int(cap.SchemeOneWay), "rights-protection scheme 1..4 (§2.3 order)")
	seed       = flag.Uint64("seed", 0, "deterministic port/secret seed (0 = crypto/rand)")
	diskBlocks = flag.Uint("disk-blocks", 4096, "block server: number of blocks")
	blockSize  = flag.Int("block-size", 1024, "block server: block size in bytes")
	diskPath   = flag.String("disk-path", "", "block server: file-backed persistent disk (default in-memory)")
	statePath  = flag.String("state-path", "", "block server: capability-table snapshot file; with -disk-path and -seed, previously issued block capabilities survive restarts")
	debugAddr  = flag.String("debug-addr", "", "HTTP debug listener serving /metrics, /debug/vars, /debug/requests and /debug/pprof (empty = off)")
)

func main() {
	flag.Parse()
	reg, err := parseRegistry(*registry)
	if err != nil {
		log.Fatalf("amoebad: %v", err)
	}
	scheme, err := cap.NewScheme(cap.SchemeID(*schemeFlag))
	if err != nil {
		log.Fatalf("amoebad: %v", err)
	}
	var src crypto.Source
	if *seed != 0 {
		src = crypto.NewSeededSource(*seed ^ uint64(*machine)<<32)
	} else {
		src = crypto.SystemSource()
	}

	nic, err := amnet.NewTCPNet(amnet.MachineID(*machine), reg)
	if err != nil {
		log.Fatalf("amoebad: %v", err)
	}
	fb := fbox.New(nic, nil)
	defer fb.Close()
	log.Printf("machine %d listening on %s (scheme %v)", *machine, nic.Addr(), cap.SchemeID(*schemeFlag))

	metrics := obs.NewRegistry()
	ring := obs.NewRing(1024)

	var closers []func() error
	startSvc := func(name string, put cap.Port, start func() error, close func() error) {
		if err := start(); err != nil {
			log.Fatalf("amoebad: starting %s: %v", name, err)
		}
		closers = append(closers, close)
		fmt.Printf("%s\t%s\n", name, put)
	}
	// observe wires a service's request metrics, access-log records and
	// queue gauges into this daemon's registry (call before startSvc —
	// the observer must be set before the server starts).
	observe := func(name string, k *svc.Kernel) {
		k.SetObserver(obs.NewServerStats(metrics, ring, name, rpc.StatusName))
		labels := obs.L("service", name)
		metrics.GaugeFunc("amoeba_queue_depth", labels, "requests queued for or occupying pool workers", func() float64 {
			return float64(k.Inflight())
		})
		metrics.GaugeFunc("amoeba_queue_wait_ewma_ns", labels, "smoothed recent queue wait, nanoseconds", func() float64 {
			return float64(k.QueueWaitEWMA())
		})
	}

	var blockPort cap.Port
	for _, svc := range strings.Split(*services, ",") {
		switch strings.TrimSpace(svc) {
		case "mem":
			s := memsvr.New(fb, scheme, src)
			observe("mem", s.Kernel)
			startSvc("mem", s.PutPort(), s.Start, s.Close)
		case "block":
			var disk vdisk.Store
			if *diskPath != "" {
				fd, err := vdisk.OpenFile(*diskPath, uint32(*diskBlocks), *blockSize)
				if err != nil {
					log.Fatalf("amoebad: %v", err)
				}
				defer fd.Close()
				disk = fd
			} else {
				md, err := vdisk.New(uint32(*diskBlocks), *blockSize)
				if err != nil {
					log.Fatalf("amoebad: %v", err)
				}
				disk = md
			}
			s, err := blocksvr.New(fb, scheme, src, disk)
			if err != nil {
				log.Fatalf("amoebad: %v", err)
			}
			if *statePath != "" {
				if snap, err := os.ReadFile(*statePath); err == nil {
					if err := s.RestoreState(snap); err != nil {
						log.Fatalf("amoebad: restoring block state: %v", err)
					}
					log.Printf("block: restored %d-byte state snapshot", len(snap))
				} else if !os.IsNotExist(err) {
					log.Fatalf("amoebad: reading %s: %v", *statePath, err)
				}
				closers = append(closers, func() error {
					return os.WriteFile(*statePath, s.SnapshotState(), 0o600)
				})
			}
			blockPort = s.PutPort()
			observe("block", s.Kernel)
			startSvc("block", s.PutPort(), s.Start, s.Close)
		case "file":
			// The file server needs a block server; find one via
			// LOCATE if this daemon does not run its own.
			client := rpc.NewClient(fb, locate.New(fb, locate.Config{}), rpc.ClientConfig{Source: src})
			port := blockPort
			if port == 0 {
				log.Printf("file: no local block server; relying on -block-port or cluster LOCATE")
				log.Fatalf("amoebad: 'file' requires 'block' in the same daemon (run them together or extend the registry)")
			}
			s, err := flatfs.New(context.Background(), fb, scheme, src, blocksvr.NewClient(client, port))
			if err != nil {
				log.Fatalf("amoebad: %v", err)
			}
			observe("file", s.Kernel)
			startSvc("file", s.PutPort(), s.Start, s.Close)
		case "dir":
			s := dirsvr.New(fb, scheme, src)
			observe("dir", s.Kernel)
			startSvc("dir", s.PutPort(), s.Start, s.Close)
		case "mv":
			s := mvfs.New(fb, scheme, src)
			observe("mv", s.Kernel)
			startSvc("mv", s.PutPort(), s.Start, s.Close)
		case "bank":
			s := banksvr.New(fb, scheme, src, banksvr.Config{
				MintingAllowed: true,
				Rates: map[[2]string]banksvr.Rate{
					{"dollar", "franc"}: {Num: 5, Den: 1},
					{"franc", "dollar"}: {Num: 1, Den: 5},
				},
			})
			observe("bank", s.Kernel)
			startSvc("bank", s.PutPort(), s.Start, s.Close)
		case "":
		default:
			log.Fatalf("amoebad: unknown service %q", svc)
		}
	}

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("amoebad: debug listener: %v", err)
		}
		srv := &http.Server{Handler: obs.Mux(metrics, ring, rpc.StatusName)}
		go srv.Serve(ln)
		closers = append(closers, srv.Close)
		log.Printf("debug http on http://%s", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	for i := len(closers) - 1; i >= 0; i-- {
		_ = closers[i]()
	}
}

func parseRegistry(s string) (map[amnet.MachineID]string, error) {
	out := make(map[amnet.MachineID]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad registry entry %q (want id=host:port)", pair)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad machine id %q: %w", id, err)
		}
		out[amnet.MachineID(n)] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty registry")
	}
	return out, nil
}
