package main

import (
	"testing"

	"amoeba/internal/amnet"
)

func TestParseRegistry(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    map[amnet.MachineID]string
		wantErr bool
	}{
		{
			name: "single entry",
			in:   "1=127.0.0.1:7001",
			want: map[amnet.MachineID]string{1: "127.0.0.1:7001"},
		},
		{
			name: "multiple with spaces",
			in:   "1=a:1, 2=b:2 ,3=c:3",
			want: map[amnet.MachineID]string{1: "a:1", 2: "b:2", 3: "c:3"},
		},
		{
			name: "trailing comma",
			in:   "5=host:9,",
			want: map[amnet.MachineID]string{5: "host:9"},
		},
		{name: "missing equals", in: "1:badform", wantErr: true},
		{name: "bad id", in: "x=host:1", wantErr: true},
		{name: "empty", in: "", wantErr: true},
		{name: "only commas", in: ",,,", wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseRegistry(tc.in)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v want %v", got, tc.want)
			}
			for id, addr := range tc.want {
				if got[id] != addr {
					t.Errorf("id %d: got %q want %q", id, got[id], addr)
				}
			}
		})
	}
}
