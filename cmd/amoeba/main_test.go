package main

import "testing"

func TestSplitComma(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{"a", []string{"a"}},
		{"", nil},
		{",,a,,b,", []string{"a", "b"}},
	}
	for _, tc := range tests {
		got := splitComma(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitComma(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitComma(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestCut(t *testing.T) {
	if pre, post, ok := cut("a=b=c", '='); !ok || pre != "a" || post != "b=c" {
		t.Errorf("cut first: %q %q %v", pre, post, ok)
	}
	if _, _, ok := cut("nope", '='); ok {
		t.Error("cut found a separator that is not there")
	}
}
