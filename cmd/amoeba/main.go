// Command amoeba is the cluster client: it joins a TCP cluster as a
// machine and performs operations against services found by LOCATE.
// Capabilities are passed on the command line as 32 hex digits (the
// 16-byte Fig. 2 wire format) and printed the same way, so they can be
// stored in shell variables and handed to other users — they are
// bearer tokens.
//
// Usage:
//
//	amoeba [-machine N -registry ...] <command> [args]
//
// Commands:
//
//	cap <hex>                         decode and pretty-print a capability
//	echo <port-hex> <text>            round-trip text off a server
//	locate <port-hex>                 find which machine serves a port
//	file-create <port-hex>            create a file, print its capability
//	file-write <cap-hex> <pos> <text> write text at pos
//	file-read <cap-hex> <pos> <len>   read bytes
//	restrict <cap-hex> <rights-hex>   fabricate a weaker capability
//	revoke <cap-hex>                  re-key the object
//	validate <cap-hex>                ask the server which rights it conveys
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"amoeba/internal/amnet"
	"amoeba/internal/cap"
	"amoeba/internal/fbox"
	"amoeba/internal/locate"
	"amoeba/internal/rpc"
	"amoeba/internal/server/flatfs"
)

var (
	machine  = flag.Uint("machine", 99, "this client's machine ID")
	registry = flag.String("registry", "1=127.0.0.1:7001,99=127.0.0.1:0", "cluster map: id=host:port,...")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// `cap` is offline: no cluster needed.
	if args[0] == "cap" {
		c := parseCap(arg(args, 1, "capability hex"))
		fmt.Printf("server port: %s\n", c.Server)
		fmt.Printf("object:      %d\n", c.Object)
		fmt.Printf("rights:      %s (%#02x)\n", c.Rights, uint8(c.Rights))
		fmt.Printf("check:       %012x\n", c.Check)
		return
	}

	reg := parseRegistry(*registry)
	nic, err := amnet.NewTCPNet(amnet.MachineID(*machine), reg)
	if err != nil {
		log.Fatalf("amoeba: %v", err)
	}
	fb := fbox.New(nic, nil)
	defer fb.Close()
	res := locate.New(fb, locate.Config{})
	client := rpc.NewClient(fb, res, rpc.ClientConfig{})
	ctx := context.Background()

	switch args[0] {
	case "locate":
		port := parsePort(arg(args, 1, "port hex"))
		at, err := res.Lookup(ctx, port)
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		fmt.Printf("port %s served by machine %v\n", port, at)
	case "echo":
		port := parsePort(arg(args, 1, "port hex"))
		rep, err := client.Trans(ctx, port, rpc.Request{Op: rpc.OpEcho, Data: []byte(arg(args, 2, "text"))})
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		fmt.Printf("%s: %q\n", rep.Status, rep.Data)
	case "file-create":
		port := parsePort(arg(args, 1, "port hex"))
		f, err := flatfs.NewClient(client, port).Create(ctx)
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		printCap(f)
	case "file-write":
		c := parseCap(arg(args, 1, "capability hex"))
		pos := parseUint(arg(args, 2, "position"))
		if err := flatfs.NewClient(client, c.Server).WriteAt(ctx, c, pos, []byte(arg(args, 3, "text"))); err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		fmt.Println("ok")
	case "file-read":
		c := parseCap(arg(args, 1, "capability hex"))
		pos := parseUint(arg(args, 2, "position"))
		n := parseUint(arg(args, 3, "length"))
		data, err := flatfs.NewClient(client, c.Server).ReadAt(ctx, c, pos, uint32(n))
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		fmt.Printf("%q\n", data)
	case "restrict":
		c := parseCap(arg(args, 1, "capability hex"))
		maskBytes, err := hex.DecodeString(arg(args, 2, "rights mask hex (2 digits)"))
		if err != nil || len(maskBytes) != 1 {
			log.Fatalf("amoeba: rights mask must be 2 hex digits")
		}
		weak, err := client.Restrict(ctx, c, cap.Rights(maskBytes[0]))
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		printCap(weak)
	case "revoke":
		c := parseCap(arg(args, 1, "capability hex"))
		fresh, err := client.Revoke(ctx, c)
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		printCap(fresh)
	case "validate":
		c := parseCap(arg(args, 1, "capability hex"))
		rights, err := client.Validate(ctx, c)
		if err != nil {
			log.Fatalf("amoeba: %v", err)
		}
		fmt.Printf("rights: %s (%#02x)\n", rights, uint8(rights))
	default:
		log.Fatalf("amoeba: unknown command %q", args[0])
	}
}

func arg(args []string, i int, what string) string {
	if len(args) <= i {
		log.Fatalf("amoeba: missing argument: %s", what)
	}
	return args[i]
}

func parseCap(s string) cap.Capability {
	buf, err := hex.DecodeString(s)
	if err != nil {
		log.Fatalf("amoeba: bad capability hex: %v", err)
	}
	c, err := cap.Decode(buf)
	if err != nil {
		log.Fatalf("amoeba: %v", err)
	}
	return c
}

func printCap(c cap.Capability) {
	w := c.Encode()
	fmt.Printf("%s\n", hex.EncodeToString(w[:]))
}

func parsePort(s string) cap.Port {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		log.Fatalf("amoeba: bad port hex: %v", err)
	}
	return cap.Port(v)
}

func parseUint(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("amoeba: bad number %q", s)
	}
	return v
}

func parseRegistry(s string) map[amnet.MachineID]string {
	out := make(map[amnet.MachineID]string)
	for _, pair := range splitComma(s) {
		id, addr, ok := cut(pair, '=')
		if !ok {
			log.Fatalf("amoeba: bad registry entry %q", pair)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			log.Fatalf("amoeba: bad machine id %q", id)
		}
		out[amnet.MachineID(n)] = addr
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func cut(s string, sep byte) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
