// Gray-failure chaos tests: failures the classic fail-stop model cannot
// see. A disk dies while the NIC keeps answering (the machine looks
// alive to every failure detector); a link drops frames in one
// direction only (the primary can send but not hear); a link flaps
// faster than anyone can write it off. The invariants are the same as
// the fail-stop suite's — zero acknowledged operations lost, exact
// conservation — but the detection path is new: wedged WALs self-demote
// the primary, sealed primaries go deliberately silent, and clients are
// shed with StatusStale so they fail over in one round trip.
package amoeba

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"amoeba/internal/amnet"
	"amoeba/internal/obs"
)

// wedgedCount reads the cluster's wedged-WAL counter for one service.
func wedgedCount(cl *Cluster, service string) uint64 {
	return cl.reg.Counter("amoeba_wal_wedged_total", obs.L("service", service), wedgedHelp).Value()
}

// demotedCount reads the self-demotion counter for one service.
func demotedCount(cl *Cluster, service string) uint64 {
	return cl.reg.Counter("amoeba_self_demotions_total", obs.L("service", service), demotedHelp).Value()
}

// wedgeServingWAL kills the disk of whichever machine CURRENTLY serves
// the service: the next WAL write fails, the log wedges, and the
// machine self-demotes. The soak workers supply the write that springs
// the trap. A detector false alarm can legally move the crown between
// the read and the injection, leaving the fault on a corpse whose log
// never writes again — so injection re-aims until a wedge actually
// lands.
func wedgeServingWAL(t *testing.T, cl *Cluster, service string, pick func(Machines) amnet.MachineID) amnet.MachineID {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		before := wedgedCount(cl, service)
		m := pick(cl.Machines())
		if f := cl.WALFault(m); f != nil {
			f.FailWritesAfter(0)
		}
		for i := 0; i < 1000; i++ {
			if wedgedCount(cl, service) > before {
				return m
			}
			if pick(cl.Machines()) != m {
				break // crown moved mid-aim; target the new primary
			}
			time.Sleep(2 * time.Millisecond)
		}
		if time.Now().After(deadline) {
			t.Fatal("WAL fault never wedged a serving primary")
		}
	}
}

// TestChaosDiskDeathDirsvr kills the directory primary's DISK — not its
// machine — mid-soak. The NIC stays up, so without the wedge→demotion
// path no failure detector would ever fire; with it, the primary
// renounces leadership, fail-stops, the standbys elect, and every
// acknowledged entry survives exactly.
func TestChaosDiskDeathDirsvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runDiskDeathDirsvr(t, 0xD15C_0000+uint64(i))
		})
	}
}

func runDiskDeathDirsvr(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	const workers, perWorker = 4, 6
	subs := make([]Capability, workers*perWorker)
	enter := func(g, i int) {
		name := fmt.Sprintf("w%d-e%d", g, i)
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker/2; i++ {
				enter(g, i)
			}
		}(g)
	}
	wg.Wait()

	// Second soak wave first, THEN the disk death: the workers' writes
	// are what springs the injected fault.
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := perWorker / 2; i < perWorker; i++ {
				enter(g, i)
			}
		}(g)
	}
	primary := wedgeServingWAL(t, cl, "directory", func(m Machines) amnet.MachineID { return m.Dirs })
	waitForFailover(t, cl, primary, func(m Machines) amnet.MachineID { return m.Dirs })
	wg.Wait()

	// Every acknowledged entry survived the disk death with its exact
	// capability — acknowledged means on a majority, and the election
	// picked the highest-acked standby.
	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after the disk death, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			got, ok := listed[name]
			if !ok {
				t.Fatalf("acknowledged entry %q lost to the disk death", name)
			}
			if got != subs[g*perWorker+i] {
				t.Fatalf("entry %q survived with a different capability", name)
			}
		}
	}
	if n := wedgedCount(cl, "directory"); n < 1 {
		t.Fatalf("amoeba_wal_wedged_total{directory} = %d, want ≥ 1", n)
	}
	if n := demotedCount(cl, "directory"); n < 1 {
		t.Fatalf("amoeba_self_demotions_total{directory} = %d, want ≥ 1", n)
	}

	// The machine whose disk died rejoins with a FRESH disk (Restart
	// builds a new incarnation, and a replaced disk is a healthy one).
	untilOK(t, "reintegrate", func(ctx context.Context) error { return cl.Restart(primary) })
	untilOK(t, "post-reintegration enter", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "rejoined", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})
}

// TestChaosDiskDeathBanksvr is the bank-server variant: the primary's
// disk dies mid-transfer soak, and after the self-demotion election
// every dollar is still in exactly one account.
func TestChaosDiskDeathBanksvr(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runDiskDeathBanksvr(t, 0xD15C_B000+uint64(i))
		})
	}
}

func runDiskDeathBanksvr(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	bank := cl.Bank()

	const accounts, grant = 6, 1000
	caps := make([]Capability, accounts)
	for i := range caps {
		untilOK(t, "create account", func(ctx context.Context) error {
			var err error
			caps[i], err = bank.CreateAccount(ctx, "dollar", grant)
			return err
		})
	}

	const workers, transfers = 4, 10
	var wg sync.WaitGroup
	work := func(g, lo int) {
		defer wg.Done()
		for i := lo; i < lo+transfers/2; i++ {
			from := caps[(g+i)%accounts]
			to := caps[(g+i+1)%accounts]
			untilOK(t, "transfer", func(ctx context.Context) error {
				err := bank.Transfer(ctx, from, to, "dollar", 1)
				if err != nil && strings.Contains(err.Error(), "insufficient funds") {
					return nil
				}
				return err
			})
		}
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, 0)
	}
	wg.Wait()

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go work(g, transfers/2)
	}
	primary := wedgeServingWAL(t, cl, "bank", func(m Machines) amnet.MachineID { return m.Bank })
	waitForFailover(t, cl, primary, func(m Machines) amnet.MachineID { return m.Bank })
	wg.Wait()

	// Exact money conservation through the wedge, demotion and election.
	total := int64(0)
	for i := range caps {
		var bal map[string]int64
		untilOK(t, "balance", func(ctx context.Context) error {
			var err error
			bal, err = bank.Balance(ctx, caps[i])
			return err
		})
		total += bal["dollar"]
	}
	if total != accounts*grant {
		t.Fatalf("money not conserved across the disk death: %d, want %d", total, accounts*grant)
	}
	if n := demotedCount(cl, "bank"); n < 1 {
		t.Fatalf("amoeba_self_demotions_total{bank} = %d, want ≥ 1", n)
	}
}

// TestChaosOneWayPartition cuts the ACK direction only: every standby
// still hears the primary perfectly, but the primary hears nothing
// back. The gray trap is that the standbys' contact clocks stay fresh
// while the primary serves blind. Safety: the first post-cut batch
// reaches zero acks, so the primary seals before its lease lapses and
// never acknowledges an op the next term's quorum doesn't hold.
// Liveness: a sealed primary stops transmitting on purpose, so the
// standbys finally observe silence, elect, and the clients — shed with
// StatusStale — fail over to the successor.
func TestChaosOneWayPartition(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runOneWayPartition(t, 0x04E1_0000+uint64(i))
		})
	}
}

func runOneWayPartition(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	const workers, perWorker = 4, 4
	subs := make([]Capability, workers*perWorker)
	enter := func(g, i int) {
		name := fmt.Sprintf("w%d-e%d", g, i)
		untilOK(t, "create "+name, func(ctx context.Context) error {
			var err error
			subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
			return err
		})
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker/2; i++ {
				enter(g, i)
			}
		}(g)
	}
	wg.Wait()

	// Sever standby→primary for every standby: acknowledgements and
	// lease grants vanish; the primary's own frames still arrive.
	cl.mu.Lock()
	primary := cl.machines.Dirs
	var standbys []amnet.MachineID
	for _, st := range cl.dirsGroup.standbys {
		if !st.down {
			standbys = append(standbys, st.machine)
		}
	}
	cl.mu.Unlock()
	for _, sm := range standbys {
		cl.Net().PartitionOneWay(sm, primary)
	}

	// Soak straight through the partition. The first post-cut batch
	// seals the primary (zero acks < majority); the workers' retries
	// ride the StatusStale shed to the successor.
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := perWorker / 2; i < perWorker; i++ {
				enter(g, i)
			}
		}(g)
	}
	waitForFailover(t, cl, primary, func(m Machines) amnet.MachineID { return m.Dirs })
	wg.Wait()

	// Everything acknowledged — by the old primary before sealing, or by
	// the successor after — is present with its exact capability.
	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after the one-way partition, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			got, ok := listed[name]
			if !ok {
				t.Fatalf("acknowledged entry %q lost to the one-way partition", name)
			}
			if got != subs[g*perWorker+i] {
				t.Fatalf("entry %q survived with a different capability", name)
			}
		}
	}
	cl.mu.Lock()
	term := cl.dirsGroup.term
	cl.mu.Unlock()
	if term < 2 {
		t.Fatalf("group term %d after the one-way partition, want ≥ 2 (an election)", term)
	}
}

// TestChaosFlappingLink flaps the primary↔standby link faster than the
// detector gap: the peer is repeatedly written off and re-based, but
// with the second standby steady the majority holds, the service stays
// available, and nothing acknowledged is lost.
func TestChaosFlappingLink(t *testing.T) {
	for i := 0; i < killRestartSeeds(t); i++ {
		t.Run(fmt.Sprintf("seed=%d", i), func(t *testing.T) {
			runFlappingLink(t, 0xF1A9_0000+uint64(i))
		})
	}
}

func runFlappingLink(t *testing.T, seed uint64) {
	cl := groupCluster(t, seed)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	cl.mu.Lock()
	primary := cl.machines.Dirs
	flappy := cl.dirsGroup.standbys[0].machine
	cl.mu.Unlock()
	// Up 40ms, down 25ms: the down windows are well inside the 225ms
	// detector gap, so elections are rare — the exercise is the lost→
	// reprobe→re-base cycle under a live write load, not failover.
	stop := cl.Net().FlapLink(primary, flappy, 40*time.Millisecond, 25*time.Millisecond)
	defer stop()

	const workers, perWorker = 4, 4
	subs := make([]Capability, workers*perWorker)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("w%d-e%d", g, i)
				untilOK(t, "create "+name, func(ctx context.Context) error {
					var err error
					subs[g*perWorker+i], err = dirs.CreateDir(ctx, cl.DirPort())
					return err
				})
				untilOK(t, "enter "+name, func(ctx context.Context) error {
					err := dirs.Enter(ctx, root, name, subs[g*perWorker+i])
					if err != nil && strings.Contains(err.Error(), "exists") {
						return nil
					}
					return err
				})
			}
		}(g)
	}
	wg.Wait()
	stop() // heal for the verification reads

	listed := make(map[string]Capability)
	untilOK(t, "list", func(ctx context.Context) error {
		entries, err := dirs.List(ctx, root)
		if err != nil {
			return err
		}
		clear(listed)
		for _, e := range entries {
			listed[e.Name] = e.Cap
		}
		return nil
	})
	if len(listed) != workers*perWorker {
		t.Fatalf("root has %d entries after the link flap, want %d", len(listed), workers*perWorker)
	}
	for g := 0; g < workers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("w%d-e%d", g, i)
			if got, ok := listed[name]; !ok || got != subs[g*perWorker+i] {
				t.Fatalf("entry %q lost or changed through the link flap", name)
			}
		}
	}
}

// TestStandbyWedgeDropsFromQuorum wedges one STANDBY's disk: the
// receiver answers every subsequent frame with its death, the shipper
// writes the peer off, and the group keeps serving on primary + the
// healthy standby (majorities count the configured size, so nothing
// loosens). Kill + Restart re-integrates the machine with a fresh disk.
func TestStandbyWedgeDropsFromQuorum(t *testing.T) {
	cl := groupCluster(t, 0x57DB)
	dirs := cl.Dirs()

	var root Capability
	untilOK(t, "create root", func(ctx context.Context) error {
		var err error
		root, err = dirs.CreateDir(ctx, cl.DirPort())
		return err
	})

	cl.mu.Lock()
	primary := cl.machines.Dirs
	stMachine := cl.dirsGroup.standbys[0].machine
	cl.mu.Unlock()
	cl.WALFault(stMachine).FailWritesAfter(0)

	// Writes keep landing: the wedged standby errors every frame, the
	// shipper retries, writes it off, and serves on the remaining
	// majority.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("through-wedge-%d", i)
		untilOK(t, "enter "+name, func(ctx context.Context) error {
			err := dirs.Enter(ctx, root, name, root)
			if err != nil && strings.Contains(err.Error(), "exists") {
				return nil
			}
			return err
		})
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		cl.mu.Lock()
		lost := cl.dirsShip.LostPeers()
		cl.mu.Unlock()
		if lost >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged standby never written off the ack quorum")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := wedgedCount(cl, "directory"); n < 1 {
		t.Fatalf("amoeba_wal_wedged_total{directory} = %d, want ≥ 1", n)
	}
	if got := cl.Machines().Dirs; got != primary {
		t.Fatal("a wedged standby triggered an election (the primary was fine)")
	}

	// The dead-disk machine re-integrates through Kill + Restart: the
	// new incarnation gets a fresh disk and a base snapshot.
	if err := cl.Kill(stMachine); err != nil {
		t.Fatal(err)
	}
	untilOK(t, "reintegrate standby", func(ctx context.Context) error { return cl.Restart(stMachine) })
	cl.mu.Lock()
	standbys := 0
	for _, st := range cl.dirsGroup.standbys {
		if !st.down {
			standbys++
		}
	}
	cl.mu.Unlock()
	if standbys != 2 {
		t.Fatalf("group has %d live standbys after re-integration, want 2", standbys)
	}
	untilOK(t, "write after standby rejoin", func(ctx context.Context) error {
		err := dirs.Enter(ctx, root, "rejoined", root)
		if err != nil && strings.Contains(err.Error(), "exists") {
			return nil
		}
		return err
	})
}
